//! Word-level synthesis helpers.
//!
//! A *word* is simply a slice of nets interpreted LSB-first. These helpers
//! emit 2-input gate structures (balanced trees, ripple chains) so that the
//! produced logic maps one-to-one onto standard-cell style cost models.
//!
//! They are used by the locking flow (key comparators, the EF-threshold
//! magnitude comparator of paper Eq. 14, the phase counter) and by the
//! synthetic benchmark generator.

use crate::gate::GateKind;
use crate::ids::NetId;
use crate::model::Netlist;
use crate::NetlistError;

/// Creates a constant-0 net.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn const0(netlist: &mut Netlist, prefix: &str) -> Result<NetId, NetlistError> {
    netlist.add_gate_fresh(GateKind::Const0, &[], &format!("{prefix}_const0"))
}

/// Creates a constant-1 net.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn const1(netlist: &mut Netlist, prefix: &str) -> Result<NetId, NetlistError> {
    netlist.add_gate_fresh(GateKind::Const1, &[], &format!("{prefix}_const1"))
}

/// Reduces `nets` with a balanced tree of 2-input gates of the given kind.
/// For an empty slice a constant is returned: 1 for AND (empty conjunction),
/// 0 for OR/XOR.
///
/// # Errors
///
/// Propagates netlist construction errors.
///
/// # Panics
///
/// Panics if `kind` is not one of `And`, `Or`, `Xor`.
pub fn reduce_tree(
    netlist: &mut Netlist,
    kind: GateKind,
    nets: &[NetId],
    prefix: &str,
) -> Result<NetId, NetlistError> {
    assert!(
        matches!(kind, GateKind::And | GateKind::Or | GateKind::Xor),
        "reduce_tree supports AND/OR/XOR, got {kind}"
    );
    match nets.len() {
        0 => {
            if kind == GateKind::And {
                const1(netlist, prefix)
            } else {
                const0(netlist, prefix)
            }
        }
        1 => Ok(nets[0]),
        _ => {
            let mut layer: Vec<NetId> = nets.to_vec();
            while layer.len() > 1 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                for pair in layer.chunks(2) {
                    if pair.len() == 2 {
                        next.push(netlist.add_gate_fresh(kind, &[pair[0], pair[1]], prefix)?);
                    } else {
                        next.push(pair[0]);
                    }
                }
                layer = next;
            }
            Ok(layer[0])
        }
    }
}

/// Balanced AND reduction.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn and_tree(
    netlist: &mut Netlist,
    nets: &[NetId],
    prefix: &str,
) -> Result<NetId, NetlistError> {
    reduce_tree(netlist, GateKind::And, nets, prefix)
}

/// Balanced OR reduction.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn or_tree(netlist: &mut Netlist, nets: &[NetId], prefix: &str) -> Result<NetId, NetlistError> {
    reduce_tree(netlist, GateKind::Or, nets, prefix)
}

/// Inverts a net.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn invert(netlist: &mut Netlist, net: NetId, prefix: &str) -> Result<NetId, NetlistError> {
    netlist.add_gate_fresh(GateKind::Not, &[net], &format!("{prefix}_n"))
}

/// `out = a == constant_bits` where `constant_bits` is LSB-first and must have
/// the same width as `word`.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidParameter`] on width mismatch and propagates
/// construction errors.
pub fn eq_const(
    netlist: &mut Netlist,
    word: &[NetId],
    constant_bits: &[bool],
    prefix: &str,
) -> Result<NetId, NetlistError> {
    if word.len() != constant_bits.len() {
        return Err(NetlistError::InvalidParameter(format!(
            "eq_const width mismatch: word has {} bits, constant has {}",
            word.len(),
            constant_bits.len()
        )));
    }
    let mut terms = Vec::with_capacity(word.len());
    let bit_prefix = format!("{prefix}_b_n");
    for (&net, &bit) in word.iter().zip(constant_bits) {
        if bit {
            terms.push(net);
        } else {
            terms.push(netlist.add_gate_fresh(GateKind::Not, &[net], &bit_prefix)?);
        }
    }
    and_tree(netlist, &terms, &format!("{prefix}_eq"))
}

/// `out = (a == b)` bit-wise over two equally sized words.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidParameter`] on width mismatch and propagates
/// construction errors.
pub fn eq_words(
    netlist: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    prefix: &str,
) -> Result<NetId, NetlistError> {
    if a.len() != b.len() {
        return Err(NetlistError::InvalidParameter(format!(
            "eq_words width mismatch: {} vs {} bits",
            a.len(),
            b.len()
        )));
    }
    let mut terms = Vec::with_capacity(a.len());
    let xnor_prefix = format!("{prefix}_xnor");
    for (&x, &y) in a.iter().zip(b) {
        terms.push(netlist.add_gate_fresh(GateKind::Xnor, &[x, y], &xnor_prefix)?);
    }
    and_tree(netlist, &terms, &format!("{prefix}_eq"))
}

/// `out = (word <= constant)` treating `word` as an unsigned LSB-first number.
///
/// This realizes the threshold comparison `k_suffix <= alpha * (2^{kf|I|}-1)`
/// of the paper's Eq. 14.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidParameter`] if the constant does not fit in
/// the word width; propagates construction errors.
pub fn le_const(
    netlist: &mut Netlist,
    word: &[NetId],
    constant: u64,
    prefix: &str,
) -> Result<NetId, NetlistError> {
    let width = word.len();
    if width < 64 && constant >= (1u64 << width) {
        return Err(NetlistError::InvalidParameter(format!(
            "le_const constant {constant} does not fit in {width} bits"
        )));
    }
    // Walk from MSB to LSB maintaining gt ("word is already greater") and
    // eq ("all inspected bits equal the constant").
    let mut gt = const0(netlist, &format!("{prefix}_gt_init"))?;
    let mut eq = const1(netlist, &format!("{prefix}_eq_init"))?;
    let eq_prefix = format!("{prefix}_eq");
    let exceed_prefix = format!("{prefix}_exceed");
    let gt_prefix = format!("{prefix}_gt");
    let nb_prefix = format!("{prefix}_nb_n");
    for i in (0..width).rev() {
        let cbit = (constant >> i) & 1 == 1;
        let w = word[i];
        if cbit {
            // word bit can never exceed a constant 1; equality requires w=1.
            eq = netlist.add_gate_fresh(GateKind::And, &[eq, w], &eq_prefix)?;
        } else {
            let exceed = netlist.add_gate_fresh(GateKind::And, &[eq, w], &exceed_prefix)?;
            gt = netlist.add_gate_fresh(GateKind::Or, &[gt, exceed], &gt_prefix)?;
            let nw = netlist.add_gate_fresh(GateKind::Not, &[w], &nb_prefix)?;
            eq = netlist.add_gate_fresh(GateKind::And, &[eq, nw], &eq_prefix)?;
        }
    }
    invert(netlist, gt, &format!("{prefix}_le"))
}

/// Ripple-carry incrementer: returns `word + 1` (same width, wrap-around).
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn increment(
    netlist: &mut Netlist,
    word: &[NetId],
    prefix: &str,
) -> Result<Vec<NetId>, NetlistError> {
    let mut out = Vec::with_capacity(word.len());
    let mut carry = const1(netlist, &format!("{prefix}_c_in"))?;
    let sum_prefix = format!("{prefix}_sum");
    let carry_prefix = format!("{prefix}_carry");
    for (i, &bit) in word.iter().enumerate() {
        let sum = netlist.add_gate_fresh(GateKind::Xor, &[bit, carry], &sum_prefix)?;
        out.push(sum);
        if i + 1 < word.len() {
            carry = netlist.add_gate_fresh(GateKind::And, &[bit, carry], &carry_prefix)?;
        }
    }
    Ok(out)
}

/// Per-bit 2:1 multiplexer over two equally sized words:
/// `out[i] = if sel { if_true[i] } else { if_false[i] }`.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidParameter`] on width mismatch; propagates
/// construction errors.
pub fn mux_word(
    netlist: &mut Netlist,
    sel: NetId,
    if_false: &[NetId],
    if_true: &[NetId],
    prefix: &str,
) -> Result<Vec<NetId>, NetlistError> {
    if if_false.len() != if_true.len() {
        return Err(NetlistError::InvalidParameter(format!(
            "mux_word width mismatch: {} vs {} bits",
            if_false.len(),
            if_true.len()
        )));
    }
    let mut out = Vec::with_capacity(if_false.len());
    let mux_prefix = format!("{prefix}_mux");
    for (&f, &t) in if_false.iter().zip(if_true) {
        out.push(netlist.add_gate_fresh(GateKind::Mux, &[sel, f, t], &mux_prefix)?);
    }
    Ok(out)
}

/// Number of bits needed to represent `value` (at least 1).
pub fn bits_for(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Converts an unsigned value to an LSB-first bit vector of the given width.
///
/// # Panics
///
/// Panics if the value does not fit in `width` bits.
pub fn to_bits(value: u64, width: usize) -> Vec<bool> {
    assert!(
        width >= bits_for(value) || value == 0,
        "value {value} does not fit in {width} bits"
    );
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

/// Converts an LSB-first bit slice back to an unsigned value.
///
/// # Panics
///
/// Panics if the slice is wider than 64 bits.
pub fn from_bits(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64, "from_bits supports at most 64 bits");
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively evaluates a single-output combinational block by direct
    /// gate evaluation in topological order.
    fn eval_net(netlist: &Netlist, assignment: &[(NetId, bool)], target: NetId) -> bool {
        let order = crate::topo::gate_order(netlist).unwrap();
        let mut values = vec![false; netlist.num_nets()];
        for &(net, val) in assignment {
            values[net.index()] = val;
        }
        for gid in order {
            let gate = netlist.gate(gid);
            let ins: Vec<bool> = gate.inputs().iter().map(|&n| values[n.index()]).collect();
            values[gate.output().index()] = gate.kind().eval(&ins);
        }
        values[target.index()]
    }

    #[test]
    fn bits_round_trip() {
        for v in [0u64, 1, 5, 255, 1023] {
            let w = bits_for(v).max(10);
            assert_eq!(from_bits(&to_bits(v, w)), v);
        }
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }

    #[test]
    fn eq_const_matches_exactly_one_pattern() {
        let mut nl = Netlist::new("t");
        let word: Vec<NetId> = (0..3).map(|i| nl.add_input(format!("w{i}"))).collect();
        let eq = eq_const(&mut nl, &word, &to_bits(5, 3), "cmp").unwrap();
        for v in 0..8u64 {
            let assignment: Vec<(NetId, bool)> = word
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, (v >> i) & 1 == 1))
                .collect();
            assert_eq!(eval_net(&nl, &assignment, eq), v == 5, "value {v}");
        }
    }

    #[test]
    fn eq_words_detects_equality() {
        let mut nl = Netlist::new("t");
        let a: Vec<NetId> = (0..4).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<NetId> = (0..4).map(|i| nl.add_input(format!("b{i}"))).collect();
        let eq = eq_words(&mut nl, &a, &b, "cmp").unwrap();
        for va in 0..16u64 {
            for vb in 0..16u64 {
                let mut assignment = Vec::new();
                for i in 0..4 {
                    assignment.push((a[i], (va >> i) & 1 == 1));
                    assignment.push((b[i], (vb >> i) & 1 == 1));
                }
                assert_eq!(eval_net(&nl, &assignment, eq), va == vb);
            }
        }
    }

    #[test]
    fn le_const_is_exact_for_all_values() {
        for threshold in [0u64, 3, 7, 9, 15] {
            let mut nl = Netlist::new("t");
            let word: Vec<NetId> = (0..4).map(|i| nl.add_input(format!("w{i}"))).collect();
            let le = le_const(&mut nl, &word, threshold, "cmp").unwrap();
            for v in 0..16u64 {
                let assignment: Vec<(NetId, bool)> = word
                    .iter()
                    .enumerate()
                    .map(|(i, &n)| (n, (v >> i) & 1 == 1))
                    .collect();
                assert_eq!(
                    eval_net(&nl, &assignment, le),
                    v <= threshold,
                    "v={v} threshold={threshold}"
                );
            }
        }
    }

    #[test]
    fn le_const_rejects_oversized_constant() {
        let mut nl = Netlist::new("t");
        let word: Vec<NetId> = (0..3).map(|i| nl.add_input(format!("w{i}"))).collect();
        assert!(le_const(&mut nl, &word, 8, "cmp").is_err());
    }

    #[test]
    fn increment_wraps_around() {
        let mut nl = Netlist::new("t");
        let word: Vec<NetId> = (0..3).map(|i| nl.add_input(format!("w{i}"))).collect();
        let inc = increment(&mut nl, &word, "inc").unwrap();
        for v in 0..8u64 {
            let assignment: Vec<(NetId, bool)> = word
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, (v >> i) & 1 == 1))
                .collect();
            let got: u64 = inc
                .iter()
                .enumerate()
                .map(|(i, &n)| (eval_net(&nl, &assignment, n) as u64) << i)
                .sum();
            assert_eq!(got, (v + 1) % 8, "v={v}");
        }
    }

    #[test]
    fn mux_word_selects_correct_side() {
        let mut nl = Netlist::new("t");
        let sel = nl.add_input("sel");
        let a: Vec<NetId> = (0..2).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<NetId> = (0..2).map(|i| nl.add_input(format!("b{i}"))).collect();
        let out = mux_word(&mut nl, sel, &a, &b, "m").unwrap();
        let assignment = vec![
            (sel, false),
            (a[0], true),
            (a[1], false),
            (b[0], false),
            (b[1], true),
        ];
        assert!(eval_net(&nl, &assignment, out[0]));
        assert!(!eval_net(&nl, &assignment, out[1]));
        let assignment = vec![
            (sel, true),
            (a[0], true),
            (a[1], false),
            (b[0], false),
            (b[1], true),
        ];
        assert!(!eval_net(&nl, &assignment, out[0]));
        assert!(eval_net(&nl, &assignment, out[1]));
    }

    #[test]
    fn reduction_trees_handle_degenerate_sizes() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let empty_and = and_tree(&mut nl, &[], "e").unwrap();
        let empty_or = or_tree(&mut nl, &[], "e").unwrap();
        let single = and_tree(&mut nl, &[a], "s").unwrap();
        assert_eq!(single, a);
        assert!(eval_net(&nl, &[(a, false)], empty_and));
        assert!(!eval_net(&nl, &[(a, false)], empty_or));
    }

    #[test]
    fn and_tree_matches_conjunction_for_many_inputs() {
        let mut nl = Netlist::new("t");
        let nets: Vec<NetId> = (0..7).map(|i| nl.add_input(format!("x{i}"))).collect();
        let out = and_tree(&mut nl, &nets, "a").unwrap();
        for v in 0..128u64 {
            let assignment: Vec<(NetId, bool)> = nets
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, (v >> i) & 1 == 1))
                .collect();
            assert_eq!(eval_net(&nl, &assignment, out), v == 127);
        }
    }
}
