//! Property-based tests for the netlist crate: `.bench` round-trips, word
//! helper correctness and unrolling interface invariants on randomly built
//! sequential circuits.

use proptest::prelude::*;

use netlist::{words, GateKind, NetId, Netlist};

/// A recipe for one random gate.
type GateRecipe = (u8, u8, u8);

/// Builds a random sequential circuit: `num_inputs` inputs, `num_dffs`
/// registers and one gate per recipe; every register's next state is a gate
/// output (or an input when no gate exists) and the last nets are outputs.
fn build_sequential(num_inputs: usize, num_dffs: usize, recipes: &[GateRecipe]) -> Netlist {
    let kinds = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
    ];
    let mut nl = Netlist::new("prop_seq");
    let mut nets: Vec<NetId> = (0..num_inputs)
        .map(|i| nl.add_input(format!("in{i}")))
        .collect();
    let dffs: Vec<NetId> = (0..num_dffs)
        .map(|i| nl.declare_dff(format!("r{i}"), i % 2 == 0).expect("unique"))
        .collect();
    nets.extend(&dffs);
    for (g, &(kind_pick, a, b)) in recipes.iter().enumerate() {
        let kind = kinds[kind_pick as usize % kinds.len()];
        let pick = |x: u8| nets[x as usize % nets.len()];
        let inputs: Vec<NetId> = if kind == GateKind::Not {
            vec![pick(a)]
        } else {
            vec![pick(a), pick(b)]
        };
        let out = nl
            .add_gate(kind, &inputs, format!("g{g}"))
            .expect("arity ok");
        nets.push(out);
    }
    for (i, &q) in dffs.iter().enumerate() {
        let d = nets[(i * 7 + 3) % nets.len()];
        nl.bind_dff(q, d).expect("first binding");
    }
    let num_outputs = nets.len().min(2);
    for &net in nets.iter().rev().take(num_outputs) {
        nl.mark_output(net).expect("distinct output nets");
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Writing and re-parsing the `.bench` form preserves the structure.
    #[test]
    fn bench_round_trip_preserves_structure(
        recipes in proptest::collection::vec(any::<GateRecipe>(), 1..20),
        num_inputs in 1usize..5,
        num_dffs in 1usize..5,
    ) {
        let nl = build_sequential(num_inputs, num_dffs, &recipes);
        nl.validate().expect("constructed netlists validate");
        let text = netlist::bench::write(&nl);
        let back = netlist::bench::parse(&text).expect("round-trip parses");
        prop_assert_eq!(back.num_inputs(), nl.num_inputs());
        prop_assert_eq!(back.num_outputs(), nl.num_outputs());
        prop_assert_eq!(back.num_dffs(), nl.num_dffs());
        prop_assert_eq!(back.num_gates(), nl.num_gates());
        // Reset values survive via the `# init` directives.
        let inits_a: Vec<bool> = nl.dffs().iter().map(|d| d.init).collect();
        let inits_b: Vec<bool> = back.dffs().iter().map(|d| d.init).collect();
        prop_assert_eq!(inits_a, inits_b);
    }

    /// Unrolling multiplies the interface by the number of cycles and removes
    /// every register.
    #[test]
    fn unrolling_interface_invariants(
        recipes in proptest::collection::vec(any::<GateRecipe>(), 1..16),
        cycles in 1usize..5,
    ) {
        let nl = build_sequential(3, 2, &recipes);
        let unrolled = netlist::unroll::unroll(&nl, cycles).expect("unrolls");
        prop_assert_eq!(unrolled.netlist.num_dffs(), 0);
        prop_assert_eq!(unrolled.netlist.num_inputs(), cycles * nl.num_inputs());
        prop_assert_eq!(unrolled.netlist.num_outputs(), cycles * nl.num_outputs());
        prop_assert_eq!(unrolled.inputs.len(), cycles);
        prop_assert!(unrolled.netlist.num_gates() >= cycles * nl.num_gates());
    }

    /// Word-level comparator helpers agree with integer arithmetic.
    #[test]
    fn word_helpers_match_integer_semantics(
        width in 1usize..7,
        value in 0u64..128,
        threshold in 0u64..128,
    ) {
        let value = value & ((1 << width) - 1);
        let threshold = threshold & ((1 << width) - 1);
        let mut nl = Netlist::new("words");
        let word: Vec<NetId> = (0..width).map(|i| nl.add_input(format!("w{i}"))).collect();
        let eq = words::eq_const(&mut nl, &word, &words::to_bits(threshold, width), "eq")
            .expect("builds");
        let le = words::le_const(&mut nl, &word, threshold, "le").expect("builds");
        let inc = words::increment(&mut nl, &word, "inc").expect("builds");

        // Evaluate directly.
        let order = netlist::topo::gate_order(&nl).expect("acyclic");
        let mut values = vec![false; nl.num_nets()];
        for (i, &net) in word.iter().enumerate() {
            values[net.index()] = (value >> i) & 1 == 1;
        }
        for gid in order {
            let gate = nl.gate(gid);
            let ins: Vec<bool> = gate.inputs().iter().map(|&n| values[n.index()]).collect();
            values[gate.output().index()] = gate.kind().eval(&ins);
        }
        prop_assert_eq!(values[eq.index()], value == threshold);
        prop_assert_eq!(values[le.index()], value <= threshold);
        let incremented: u64 = inc
            .iter()
            .enumerate()
            .map(|(i, &n)| (values[n.index()] as u64) << i)
            .sum();
        prop_assert_eq!(incremented, (value + 1) % (1 << width));
    }

    /// Bit-vector packing helpers are inverses of each other.
    #[test]
    fn bit_packing_round_trips(value in 0u64..u64::MAX / 2, width in 1usize..63) {
        let masked = value & ((1u64 << width) - 1);
        let bits = words::to_bits(masked, width);
        prop_assert_eq!(bits.len(), width);
        prop_assert_eq!(words::from_bits(&bits), masked);
    }
}
