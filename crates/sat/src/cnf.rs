//! Clause database in conjunctive normal form.

use crate::engine::ClauseSink;
use crate::types::{Lit, Var};

/// A CNF formula: a number of variables plus a list of clauses.
///
/// [`Cnf`] is a plain container (no solving logic); it is what the DIMACS
/// reader produces and what the Tseitin encoder can target when a formula
/// should be inspected or serialized rather than solved directly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Ensures that at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable that has not been allocated.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        for lit in lits {
            assert!(
                lit.var().index() < self.num_vars,
                "literal {lit} references an unallocated variable"
            );
        }
        self.clauses.push(lits.to_vec());
    }

    /// The clauses of the formula.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Evaluates the formula under a full assignment indexed by variable.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is narrower than [`Cnf::num_vars`].
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars, "assignment too narrow");
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|lit| assignment[lit.var().index()] != lit.is_negative())
        })
    }

    /// Brute-force satisfiability check by enumerating all assignments.
    /// Intended for cross-checking the CDCL solver on small formulas.
    ///
    /// Returns a satisfying assignment if one exists.
    ///
    /// # Panics
    ///
    /// Panics if the formula has more than 24 variables.
    pub fn brute_force(&self) -> Option<Vec<bool>> {
        assert!(
            self.num_vars <= 24,
            "brute force limited to 24 variables, formula has {}",
            self.num_vars
        );
        let n = self.num_vars;
        for bits in 0u64..(1u64 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            if self.evaluate(&assignment) {
                return Some(assignment);
            }
        }
        None
    }
}

impl ClauseSink for Cnf {
    fn new_var(&mut self) -> Var {
        Cnf::new_var(self)
    }

    /// Stores the clause verbatim. Returns `false` for the empty clause
    /// (the formula is then trivially unsatisfiable), mirroring the solver
    /// contract.
    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        Cnf::add_clause(self, lits);
        !lits.is_empty()
    }

    fn num_vars(&self) -> usize {
        Cnf::num_vars(self)
    }

    fn num_clauses(&self) -> usize {
        Cnf::num_clauses(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_evaluate() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause(&[Lit::positive(a), Lit::positive(b)]);
        cnf.add_clause(&[Lit::negative(a)]);
        assert_eq!(cnf.num_vars(), 2);
        assert_eq!(cnf.num_clauses(), 2);
        assert!(cnf.evaluate(&[false, true]));
        assert!(!cnf.evaluate(&[true, true]));
        assert!(!cnf.evaluate(&[false, false]));
    }

    #[test]
    fn brute_force_finds_models_and_detects_unsat() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        cnf.add_clause(&[Lit::positive(a)]);
        assert_eq!(cnf.brute_force(), Some(vec![true]));
        cnf.add_clause(&[Lit::negative(a)]);
        assert_eq!(cnf.brute_force(), None);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn adding_clause_with_unknown_variable_panics() {
        let mut cnf = Cnf::new();
        cnf.add_clause(&[Lit::positive(Var::from_index(3))]);
    }

    #[test]
    fn ensure_vars_grows_only() {
        let mut cnf = Cnf::new();
        cnf.ensure_vars(5);
        assert_eq!(cnf.num_vars(), 5);
        cnf.ensure_vars(2);
        assert_eq!(cnf.num_vars(), 5);
    }
}
