//! DIMACS CNF reader and writer.

use std::error::Error;
use std::fmt;

use crate::cnf::Cnf;
use crate::types::Lit;

/// Error produced while parsing a DIMACS file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseDimacsError {}

/// Parses a DIMACS CNF document.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] for malformed headers, non-integer tokens or
/// literals referencing variables beyond the declared count.
pub fn parse(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut cnf = Cnf::new();
    let mut declared_vars: Option<usize> = None;
    let mut current: Vec<Lit> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(ParseDimacsError {
                    line: lineno,
                    message: "expected `p cnf <vars> <clauses>`".to_string(),
                });
            }
            let vars: usize =
                parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ParseDimacsError {
                        line: lineno,
                        message: "missing or invalid variable count".to_string(),
                    })?;
            declared_vars = Some(vars);
            cnf.ensure_vars(vars);
            continue;
        }
        for token in line.split_whitespace() {
            let value: i64 = token.parse().map_err(|_| ParseDimacsError {
                line: lineno,
                message: format!("invalid literal `{token}`"),
            })?;
            match Lit::from_dimacs(value) {
                None => {
                    cnf.add_clause(&current);
                    current.clear();
                }
                Some(lit) => {
                    if let Some(max) = declared_vars {
                        if lit.var().index() >= max {
                            return Err(ParseDimacsError {
                                line: lineno,
                                message: format!(
                                    "literal {value} exceeds declared variable count {max}"
                                ),
                            });
                        }
                    } else {
                        cnf.ensure_vars(lit.var().index() + 1);
                    }
                    current.push(lit);
                }
            }
        }
    }
    if !current.is_empty() {
        cnf.add_clause(&current);
    }
    Ok(cnf)
}

/// Parses a DIMACS CNF document and loads it into a clause sink (typically a
/// solver), allocating variables as needed. Returns the number of clauses
/// added.
///
/// This is the convenience load path for solving externally produced
/// instances; it parses into a temporary [`Cnf`] first, so peak memory is
/// one full copy of the formula plus the sink's own representation.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] under the same conditions as [`parse`].
pub fn read_into<S: crate::ClauseSink>(
    text: &str,
    sink: &mut S,
) -> Result<usize, ParseDimacsError> {
    let cnf = parse(text)?;
    while sink.num_vars() < cnf.num_vars() {
        sink.new_var();
    }
    for clause in cnf.clauses() {
        sink.add_clause(clause);
    }
    Ok(cnf.num_clauses())
}

/// Serializes a CNF formula to the DIMACS format.
pub fn write(cnf: &Cnf) -> String {
    let mut out = String::new();
    out.push_str(&format!("p cnf {} {}\n", cnf.num_vars(), cnf.num_clauses()));
    for clause in cnf.clauses() {
        for lit in clause {
            out.push_str(&lit.to_dimacs().to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SatResult, Solver};

    const SAMPLE: &str = "\
c sample instance
p cnf 3 3
1 -2 0
2 3 0
-1 0
";

    #[test]
    fn parse_sample() {
        let cnf = parse(SAMPLE).unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 3);
        // Satisfiable with x1=0, x2=0, x3=1.
        assert!(cnf.evaluate(&[false, false, true]));
    }

    #[test]
    fn round_trip() {
        let cnf = parse(SAMPLE).unwrap();
        let text = write(&cnf);
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed, cnf);
    }

    #[test]
    fn solver_agrees_with_brute_force_on_parsed_instance() {
        let cnf = parse(SAMPLE).unwrap();
        let mut solver = Solver::new();
        for _ in 0..cnf.num_vars() {
            solver.new_var();
        }
        for clause in cnf.clauses() {
            solver.add_clause(clause);
        }
        match solver.solve() {
            SatResult::Sat(model) => {
                let assignment: Vec<bool> = (0..cnf.num_vars())
                    .map(|i| model.value(crate::Var::from_index(i)))
                    .collect();
                assert!(cnf.evaluate(&assignment));
            }
            SatResult::Unsat => assert!(cnf.brute_force().is_none()),
            SatResult::Interrupted => panic!("no SolveControl installed"),
        }
    }

    #[test]
    fn read_into_streams_clauses_into_a_solver() {
        let mut solver = Solver::new();
        let added = read_into(SAMPLE, &mut solver).unwrap();
        assert_eq!(added, 3);
        assert_eq!(crate::ClauseSink::num_vars(&solver), 3);
        match solver.solve() {
            SatResult::Sat(model) => {
                let cnf = parse(SAMPLE).unwrap();
                let assignment: Vec<bool> = (0..cnf.num_vars())
                    .map(|i| model.value(crate::Var::from_index(i)))
                    .collect();
                assert!(cnf.evaluate(&assignment));
            }
            SatResult::Unsat => panic!("sample is satisfiable"),
            SatResult::Interrupted => panic!("no SolveControl installed"),
        }
    }

    #[test]
    fn bad_header_is_rejected() {
        assert!(parse("p dnf 1 1\n1 0\n").is_err());
        assert!(parse("p cnf x 1\n").is_err());
    }

    #[test]
    fn literal_beyond_declared_count_is_rejected() {
        assert!(parse("p cnf 1 1\n2 0\n").is_err());
    }

    #[test]
    fn missing_header_infers_variable_count() {
        let cnf = parse("1 2 0\n-2 3 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
    }

    #[test]
    fn trailing_clause_without_zero_is_kept() {
        let cnf = parse("p cnf 2 1\n1 2\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
    }
}
