//! Solver-facing result types and the engine abstraction.
//!
//! Two traits split what a CNF consumer can be:
//!
//! * [`ClauseSink`] — anything that accepts fresh variables and clauses. The
//!   Tseitin encoder and the miter helpers are generic over this, so a
//!   formula can be streamed into a solving engine or into a plain [`Cnf`]
//!   container for inspection/serialization.
//! * [`SatEngine`] — a clause sink that can also be solved, incrementally and
//!   under assumptions. Both the arena-based [`Solver`] and the retained
//!   [`reference::Solver`] implement it, which is how the attack loop and the
//!   benchmarks run the same DIP pipeline on either engine.
//!
//! [`Cnf`]: crate::Cnf
//! [`Solver`]: crate::Solver
//! [`reference::Solver`]: crate::reference::Solver

use std::fmt;
use std::sync::Arc;

use crate::types::{Lit, Var};

/// Outcome of a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// The formula (under the given assumptions) is satisfiable; a model is
    /// attached.
    Sat(Model),
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The solve call was cut short by a [`SolveControl`] budget or stop
    /// callback before reaching a verdict. The solver's search state (clause
    /// database, learnt clauses, activities, phases) is fully preserved: a
    /// follow-up solve continues where the interrupted one left off and
    /// reaches the same verdict an uninterrupted call would have.
    Interrupted,
}

impl SatResult {
    /// Returns the model if the result is SAT.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat | SatResult::Interrupted => None,
        }
    }

    /// `true` when satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// `true` when the query was interrupted before reaching a verdict.
    pub fn is_interrupted(&self) -> bool {
        matches!(self, SatResult::Interrupted)
    }
}

/// Stop predicate polled by the solver at restart boundaries. Shared via
/// [`Arc`] so a single deadline can interrupt several engines.
pub type StopFn = Arc<dyn Fn() -> bool + Send + Sync>;

/// Cooperative-interruption controls applied to every solve call of an
/// engine.
///
/// Budgets are **per call**: a solve that starts with a budget of `n`
/// conflicts gives up (returning [`SatResult::Interrupted`]) after `n`
/// conflicts of its own, regardless of effort spent by earlier calls. The
/// `should_stop` callback is polled at restart boundaries — frequent enough
/// for wall-clock deadlines (restarts fire every few hundred conflicts) while
/// keeping the callback off the propagation hot path. Budgets are checked at
/// every propagation fixpoint, so an interrupted solver never leaves
/// half-propagated state behind.
#[derive(Clone, Default)]
pub struct SolveControl {
    /// Give up after this many conflicts in one solve call.
    pub max_conflicts: Option<u64>,
    /// Give up after this many propagations in one solve call.
    pub max_propagations: Option<u64>,
    /// Polled at restart boundaries; `true` interrupts the call.
    pub should_stop: Option<StopFn>,
}

impl SolveControl {
    /// No budgets, no callback: solve runs to a verdict.
    pub fn unlimited() -> Self {
        SolveControl::default()
    }

    /// A control with only a per-call conflict budget.
    pub fn with_conflict_budget(max_conflicts: u64) -> Self {
        SolveControl {
            max_conflicts: Some(max_conflicts),
            ..SolveControl::default()
        }
    }

    /// A control that polls `stop` at restart boundaries.
    pub fn with_stop_callback(stop: StopFn) -> Self {
        SolveControl {
            should_stop: Some(stop),
            ..SolveControl::default()
        }
    }

    /// `true` when no budget or callback is installed (the default).
    pub fn is_unlimited(&self) -> bool {
        self.max_conflicts.is_none()
            && self.max_propagations.is_none()
            && self.should_stop.is_none()
    }
}

impl fmt::Debug for SolveControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolveControl")
            .field("max_conflicts", &self.max_conflicts)
            .field("max_propagations", &self.max_propagations)
            .field(
                "should_stop",
                &self.should_stop.as_ref().map(|_| "<callback>"),
            )
            .finish()
    }
}

/// A complete satisfying assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    pub(crate) values: Vec<bool>,
}

impl Model {
    /// Value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable was created after the model was extracted.
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// Value of a literal.
    ///
    /// # Panics
    ///
    /// Panics if the underlying variable is out of range.
    pub fn lit_value(&self, lit: Lit) -> bool {
        self.value(lit.var()) ^ lit.is_negative()
    }

    /// Number of variables covered by the model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the model covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Search statistics, useful for reporting attack effort.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of literal propagations.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently stored (live count: decremented
    /// when reduce-DB deletes a clause).
    pub learned: u64,
    /// Number of learnt clauses deleted by reduce-DB.
    pub deleted: u64,
    /// Number of reduce-DB passes performed.
    pub reduces: u64,
    /// Number of literals stripped from learnt clauses by self-subsumption
    /// minimization against reason clauses.
    pub minimized_lits: u64,
}

impl SolverStats {
    /// Accumulates `other` into `self`, field by field. Used to aggregate the
    /// effort of the per-depth solvers of an attack run into one report.
    pub fn merge(&mut self, other: &SolverStats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.learned += other.learned;
        self.deleted += other.deleted;
        self.reduces += other.reduces;
        self.minimized_lits += other.minimized_lits;
    }
}

/// One learnt clause inside a [`SolverState`] snapshot: its literals plus
/// the quality metadata (glue and activity) the solver uses to rank it.
/// Binaries are included (`lits.len() == 2`); learnt units are not — a
/// unit becomes a plain root-level assignment, not an entry in the learnt
/// database, so snapshots carry clauses of two or more literals only.
#[derive(Debug, Clone, PartialEq)]
pub struct LearntClause {
    /// Literal-block distance (glue) recorded when the clause was learnt.
    pub lbd: u32,
    /// Clause activity at export time (same scale as the exporting solver's
    /// clause-activity increment).
    pub activity: f32,
    /// The literals; at least two.
    pub lits: Vec<Lit>,
}

/// A serializable snapshot of a CDCL engine's search state: the learnt
/// clause database (with per-clause glue/activity), VSIDS variable
/// activities, saved phases and restart bookkeeping.
///
/// A snapshot is only meaningful relative to the exact clause database it
/// was exported from: the learnt clauses are implied by *those* problem
/// clauses over *that* variable numbering. Importing into an engine holding
/// a different encoding is unsound; callers must bind a snapshot to its
/// origin (the attack checkpoint does this with a state fingerprint) and
/// refuse to import on mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverState {
    /// Variable count of the exporting engine. Import requires an exact
    /// match.
    pub num_vars: u32,
    /// VSIDS variable-activity increment at export time.
    pub var_inc: f64,
    /// Clause-activity increment at export time.
    pub cla_inc: f64,
    /// `true` when the exporting solver ran Luby restarts, `false` for
    /// dynamic-LBD restarts.
    pub luby_restarts: bool,
    /// Since-forever sum of learnt-clause LBDs (dynamic-restart baseline).
    pub lbd_global_sum: u64,
    /// Count behind `lbd_global_sum`.
    pub lbd_global_count: u64,
    /// Per-variable VSIDS activities; length `num_vars`.
    pub activity: Vec<f64>,
    /// Per-variable saved phases; length `num_vars`.
    pub phase: Vec<bool>,
    /// The learnt clauses (binaries included, possibly glue-pruned).
    pub clauses: Vec<LearntClause>,
}

impl SolverState {
    /// Number of learnt clauses in the snapshot.
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    /// Total literals across the snapshot's learnt clauses.
    pub fn literal_count(&self) -> usize {
        self.clauses.iter().map(|c| c.lits.len()).sum()
    }
}

/// Pruning knobs for [`SatEngine::export_state`], bounding snapshot size on
/// pathological runs. The defaults (`None`) export the full learnt database.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateExportOptions {
    /// Keep only learnt clauses whose glue (LBD) is at most this value.
    pub glue_cap: Option<u32>,
    /// Cap the total literal count of the snapshot; clauses are kept in
    /// ascending-glue (then descending-activity) order until the cap is
    /// reached, so the cheapest-to-rederive clauses are dropped first.
    pub literal_cap: Option<usize>,
}

/// A consumer of CNF: fresh variables plus clauses.
pub trait ClauseSink {
    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Adds a clause (a disjunction of literals). Returns `false` if the
    /// clause database became unsatisfiable at the root level.
    fn add_clause(&mut self, lits: &[Lit]) -> bool;

    /// Number of allocated variables.
    fn num_vars(&self) -> usize;

    /// Number of clauses currently stored.
    fn num_clauses(&self) -> usize;
}

/// A clause sink that can be solved, incrementally and under assumptions.
pub trait SatEngine: ClauseSink + Default {
    /// Solves the current clause database.
    fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves the clause database under the given assumption literals.
    fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult;

    /// Installs the cooperative-interruption controls applied to every
    /// subsequent solve call (budgets reset per call). A solve cut short by
    /// the control returns [`SatResult::Interrupted`] with the search state
    /// preserved.
    fn set_control(&mut self, control: SolveControl);

    /// Search statistics accumulated so far.
    fn stats(&self) -> SolverStats;

    /// `false` once the clause database has been proven unsatisfiable at the
    /// root level.
    fn is_consistent(&self) -> bool;

    /// After [`Self::solve_with_assumptions`] returned [`SatResult::Unsat`],
    /// the subset of the assumption literals that the refutation actually
    /// used (MiniSat's final conflict analysis). Empty when the clause
    /// database is unsatisfiable regardless of the assumptions. The slice is
    /// valid until the next solve call; the order is unspecified.
    fn failed_assumptions(&self) -> &[Lit];

    /// Serializes the engine's learnt search state (learnt clauses with
    /// glue/activity, VSIDS activities, saved phases, restart bookkeeping)
    /// into a [`SolverState`], optionally pruned by `options`. Engines that
    /// do not retain an exportable search state return `None` — the default,
    /// which the reference engine inherits.
    fn export_state(&self, options: &StateExportOptions) -> Option<SolverState> {
        let _ = options;
        None
    }

    /// Restores a snapshot produced by [`Self::export_state`] on an engine
    /// holding the *same* clause database and variable numbering the
    /// snapshot was exported from. On success the learnt clauses are
    /// re-attached and activities/phases/restart state replaced. Returns a
    /// diagnostic without touching the engine when the snapshot cannot be
    /// applied (wrong variable count, malformed entries, or — the default,
    /// which the reference engine inherits — no import support at all).
    ///
    /// Callers are responsible for the deeper compatibility contract: the
    /// snapshot's clauses are only implied by the clause database they were
    /// exported over, so importing into a different encoding — even one
    /// with a matching variable count — is unsound.
    fn import_state(&mut self, state: &SolverState) -> Result<(), String> {
        let _ = state;
        Err("this engine does not support search-state import".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_sums_every_field() {
        let mut a = SolverStats {
            decisions: 1,
            propagations: 2,
            conflicts: 3,
            restarts: 4,
            learned: 5,
            deleted: 6,
            reduces: 7,
            minimized_lits: 8,
        };
        a.merge(&a.clone());
        assert_eq!(
            a,
            SolverStats {
                decisions: 2,
                propagations: 4,
                conflicts: 6,
                restarts: 8,
                learned: 10,
                deleted: 12,
                reduces: 14,
                minimized_lits: 16,
            }
        );
    }
}
