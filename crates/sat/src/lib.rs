//! Boolean satisfiability infrastructure for the TriLock reproduction.
//!
//! The SAT-based sequential attack of the paper (COMB-SAT on the unrolled
//! locked circuit) needs three ingredients, all provided here from scratch:
//!
//! * [`Solver`] — an attack-scale conflict-driven clause-learning (CDCL) SAT
//!   solver: flat-arena clause store with specialized binary watch lists,
//!   two-literal watching, VSIDS branching, first-UIP learning with
//!   self-subsumption minimization, LBD-guided learnt-clause reduction,
//!   phase saving and Luby restarts. It supports incremental clause addition
//!   between `solve` calls and solving under assumptions. The pre-arena
//!   implementation is retained as [`reference::Solver`] and pinned against
//!   the fast engine by a differential fuzz suite.
//! * [`Cnf`] / [`dimacs`] — a clause database and DIMACS reader/writer used
//!   for testing and interoperability. The [`ClauseSink`] trait lets the
//!   encoders below target either a solving engine or a plain [`Cnf`].
//! * [`tseitin`] — Tseitin encoding of combinational [`netlist::Netlist`]s
//!   into CNF, with support for sharing variables between circuit copies
//!   (the key ingredient of miter construction), binding nets to constants
//!   with gate-level constant folding, and cone-of-influence restricted
//!   encoding — the combination that keeps each DIP observation cheap.
//! * [`miter`] — helper constraints: equality, difference ("at least one
//!   output differs"), and fixing nets to constants.
//!
//! # Example
//!
//! ```
//! use sat::{Lit, Solver, SatResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[Lit::positive(a), Lit::positive(b)]);
//! solver.add_clause(&[Lit::negative(a)]);
//! match solver.solve() {
//!     SatResult::Sat(model) => assert!(model.value(b)),
//!     other => unreachable!("formula is satisfiable: {other:?}"),
//! }
//! ```
//!
//! Long queries can be made interruptible with [`SolveControl`]: a per-call
//! conflict/propagation budget plus a stop callback polled at restart
//! boundaries, returning [`SatResult::Interrupted`] with the search state
//! preserved — the mechanism the attack runtime uses to honor wall-clock
//! deadlines without losing the learnt-clause arena.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
mod engine;
mod solver;
mod types;

pub mod dimacs;
pub mod miter;
pub mod reference;
pub mod tseitin;

pub use cnf::Cnf;
pub use engine::{
    ClauseSink, LearntClause, Model, SatEngine, SatResult, SolveControl, SolverState, SolverStats,
    StateExportOptions, StopFn,
};
pub use solver::{RestartMode, Solver};
pub use types::{Lit, Var};
