//! Boolean satisfiability infrastructure for the TriLock reproduction.
//!
//! The SAT-based sequential attack of the paper (COMB-SAT on the unrolled
//! locked circuit) needs three ingredients, all provided here from scratch:
//!
//! * [`Solver`] — a conflict-driven clause-learning (CDCL) SAT solver with
//!   two-literal watching, VSIDS branching, first-UIP learning, phase saving
//!   and Luby restarts. It supports incremental clause addition between
//!   `solve` calls and solving under assumptions.
//! * [`Cnf`] / [`dimacs`] — a clause database and DIMACS reader/writer used
//!   for testing and interoperability.
//! * [`tseitin`] — Tseitin encoding of combinational [`netlist::Netlist`]s
//!   into CNF, with support for sharing variables between circuit copies
//!   (the key ingredient of miter construction).
//! * [`miter`] — helper constraints: equality, difference ("at least one
//!   output differs"), and fixing nets to constants.
//!
//! # Example
//!
//! ```
//! use sat::{Lit, Solver, SatResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[Lit::positive(a), Lit::positive(b)]);
//! solver.add_clause(&[Lit::negative(a)]);
//! match solver.solve() {
//!     SatResult::Sat(model) => assert!(model.value(b)),
//!     SatResult::Unsat => unreachable!("formula is satisfiable"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
mod solver;
mod types;

pub mod dimacs;
pub mod miter;
pub mod tseitin;

pub use cnf::Cnf;
pub use solver::{Model, SatResult, Solver, SolverStats};
pub use types::{Lit, Var};
