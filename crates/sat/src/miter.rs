//! Miter-style constraint helpers.
//!
//! The COMB-SAT attack repeatedly needs three kinds of constraints on top of
//! the Tseitin-encoded circuit copies:
//!
//! * fix a net (or a whole word) to a concrete value — used when replaying a
//!   distinguishing input pattern and the oracle response;
//! * force two literals to be equal — used to tie the outputs of a circuit
//!   copy to the oracle response;
//! * ask for *some* difference between two output vectors — the core of the
//!   DIP search.

use crate::solver::Solver;
use crate::types::Lit;

/// Forces `lit` to take the given Boolean value.
pub fn assert_value(solver: &mut Solver, lit: Lit, value: bool) {
    solver.add_clause(&[if value { lit } else { !lit }]);
}

/// Forces every literal of `lits` to the corresponding value in `values`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn assert_values(solver: &mut Solver, lits: &[Lit], values: &[bool]) {
    assert_eq!(
        lits.len(),
        values.len(),
        "literal and value vectors must have the same width"
    );
    for (&lit, &value) in lits.iter().zip(values) {
        assert_value(solver, lit, value);
    }
}

/// Forces `a = b`.
pub fn assert_equal(solver: &mut Solver, a: Lit, b: Lit) {
    solver.add_clause(&[!a, b]);
    solver.add_clause(&[a, !b]);
}

/// Forces the two words to be equal element-wise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn assert_equal_words(solver: &mut Solver, a: &[Lit], b: &[Lit]) {
    assert_eq!(a.len(), b.len(), "words must have the same width");
    for (&x, &y) in a.iter().zip(b) {
        assert_equal(solver, x, y);
    }
}

/// Returns a fresh literal that is true iff `a != b`.
pub fn difference(solver: &mut Solver, a: Lit, b: Lit) -> Lit {
    let d = Lit::positive(solver.new_var());
    // d = a xor b
    solver.add_clause(&[!d, a, b]);
    solver.add_clause(&[!d, !a, !b]);
    solver.add_clause(&[d, !a, b]);
    solver.add_clause(&[d, a, !b]);
    d
}

/// Returns a fresh literal that is true iff at least one pair of literals
/// differs. The returned literal is *not* asserted; callers either add it as a
/// unit clause (permanent miter) or pass it as an assumption (retractable
/// query).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn any_difference(solver: &mut Solver, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len(), "words must have the same width");
    let diffs: Vec<Lit> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| difference(solver, x, y))
        .collect();
    let any = Lit::positive(solver.new_var());
    // any = OR(diffs)
    let mut long = Vec::with_capacity(diffs.len() + 1);
    for &d in &diffs {
        solver.add_clause(&[any, !d]);
        long.push(d);
    }
    long.push(!any);
    solver.add_clause(&long);
    any
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SatResult, Solver};

    #[test]
    fn assert_value_fixes_literals() {
        let mut s = Solver::new();
        let a = Lit::positive(s.new_var());
        assert_value(&mut s, a, false);
        match s.solve() {
            SatResult::Sat(m) => assert!(!m.lit_value(a)),
            SatResult::Unsat => panic!("satisfiable"),
        }
    }

    #[test]
    fn equal_words_propagate() {
        let mut s = Solver::new();
        let a: Vec<Lit> = (0..3).map(|_| Lit::positive(s.new_var())).collect();
        let b: Vec<Lit> = (0..3).map(|_| Lit::positive(s.new_var())).collect();
        assert_equal_words(&mut s, &a, &b);
        assert_values(&mut s, &a, &[true, false, true]);
        match s.solve() {
            SatResult::Sat(m) => {
                assert!(m.lit_value(b[0]));
                assert!(!m.lit_value(b[1]));
                assert!(m.lit_value(b[2]));
            }
            SatResult::Unsat => panic!("satisfiable"),
        }
    }

    #[test]
    fn any_difference_is_unsat_for_tied_words() {
        let mut s = Solver::new();
        let a: Vec<Lit> = (0..4).map(|_| Lit::positive(s.new_var())).collect();
        let b: Vec<Lit> = (0..4).map(|_| Lit::positive(s.new_var())).collect();
        assert_equal_words(&mut s, &a, &b);
        let diff = any_difference(&mut s, &a, &b);
        assert_eq!(s.solve_with_assumptions(&[diff]), SatResult::Unsat);
        // Without the assumption the formula is satisfiable.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn any_difference_finds_a_differing_assignment() {
        let mut s = Solver::new();
        let a: Vec<Lit> = (0..2).map(|_| Lit::positive(s.new_var())).collect();
        let b: Vec<Lit> = (0..2).map(|_| Lit::positive(s.new_var())).collect();
        let diff = any_difference(&mut s, &a, &b);
        s.add_clause(&[diff]);
        match s.solve() {
            SatResult::Sat(m) => {
                let va: Vec<bool> = a.iter().map(|&l| m.lit_value(l)).collect();
                let vb: Vec<bool> = b.iter().map(|&l| m.lit_value(l)).collect();
                assert_ne!(va, vb);
            }
            SatResult::Unsat => panic!("difference must be achievable"),
        }
    }

    #[test]
    #[should_panic(expected = "same width")]
    fn mismatched_word_widths_panic() {
        let mut s = Solver::new();
        let a = vec![Lit::positive(s.new_var())];
        let b = vec![];
        assert_equal_words(&mut s, &a, &b);
    }
}
