//! Miter-style constraint helpers.
//!
//! The COMB-SAT attack repeatedly needs three kinds of constraints on top of
//! the Tseitin-encoded circuit copies:
//!
//! * fix a net (or a whole word) to a concrete value — used when replaying a
//!   distinguishing input pattern and the oracle response;
//! * force two literals to be equal — used to tie the outputs of a circuit
//!   copy to the oracle response;
//! * ask for *some* difference between two output vectors — the core of the
//!   DIP search.
//!
//! All helpers are generic over [`ClauseSink`], so they can target either
//! solving engine (or a plain [`crate::Cnf`]). The `*_bounds` variants accept
//! [`Bound`]s — outputs of a constant-folding encode may be compile-time
//! constants rather than literals, and the constraints simplify accordingly.

use crate::engine::ClauseSink;
use crate::tseitin::Bound;
use crate::types::Lit;

/// Forces `lit` to take the given Boolean value.
pub fn assert_value<S: ClauseSink>(solver: &mut S, lit: Lit, value: bool) {
    solver.add_clause(&[if value { lit } else { !lit }]);
}

/// Forces every literal of `lits` to the corresponding value in `values`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn assert_values<S: ClauseSink>(solver: &mut S, lits: &[Lit], values: &[bool]) {
    assert_eq!(
        lits.len(),
        values.len(),
        "literal and value vectors must have the same width"
    );
    for (&lit, &value) in lits.iter().zip(values) {
        assert_value(solver, lit, value);
    }
}

/// Forces a bound net to the given value. A literal gets a unit clause; a
/// matching constant needs nothing; a contradicting constant adds the empty
/// clause, making the formula unsatisfiable (no assignment can reconcile a
/// folded constant with the opposite observation).
pub fn assert_bound<S: ClauseSink>(solver: &mut S, bound: Bound, value: bool) {
    match bound {
        Bound::Lit(lit) => assert_value(solver, lit, value),
        Bound::Const(v) => {
            if v != value {
                solver.add_clause(&[]);
            }
        }
    }
}

/// Forces every bound of `bounds` to the corresponding value in `values`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn assert_bound_values<S: ClauseSink>(solver: &mut S, bounds: &[Bound], values: &[bool]) {
    assert_eq!(
        bounds.len(),
        values.len(),
        "bound and value vectors must have the same width"
    );
    for (&bound, &value) in bounds.iter().zip(values) {
        assert_bound(solver, bound, value);
    }
}

/// Forces `a = b`.
pub fn assert_equal<S: ClauseSink>(solver: &mut S, a: Lit, b: Lit) {
    solver.add_clause(&[!a, b]);
    solver.add_clause(&[a, !b]);
}

/// Forces the two words to be equal element-wise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn assert_equal_words<S: ClauseSink>(solver: &mut S, a: &[Lit], b: &[Lit]) {
    assert_eq!(a.len(), b.len(), "words must have the same width");
    for (&x, &y) in a.iter().zip(b) {
        assert_equal(solver, x, y);
    }
}

/// Returns a fresh literal that is true iff `a != b`.
pub fn difference<S: ClauseSink>(solver: &mut S, a: Lit, b: Lit) -> Lit {
    let d = Lit::positive(solver.new_var());
    // d = a xor b
    solver.add_clause(&[!d, a, b]);
    solver.add_clause(&[!d, !a, !b]);
    solver.add_clause(&[d, !a, b]);
    solver.add_clause(&[d, a, !b]);
    d
}

/// Returns a fresh literal that is true iff at least one pair of literals
/// differs. The returned literal is *not* asserted; callers either add it as a
/// unit clause (permanent miter) or pass it as an assumption (retractable
/// query).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn any_difference<S: ClauseSink>(solver: &mut S, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len(), "words must have the same width");
    let bounds_a: Vec<Bound> = a.iter().map(|&l| Bound::Lit(l)).collect();
    let bounds_b: Vec<Bound> = b.iter().map(|&l| Bound::Lit(l)).collect();
    any_difference_bounds(solver, &bounds_a, &bounds_b)
}

/// [`any_difference`] over bound words: constant/constant pairs are compared
/// statically, constant/literal pairs contribute the (possibly negated)
/// literal itself, and only literal/literal pairs spend a fresh XOR variable.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn any_difference_bounds<S: ClauseSink>(solver: &mut S, a: &[Bound], b: &[Bound]) -> Lit {
    assert_eq!(a.len(), b.len(), "words must have the same width");
    let mut diffs: Vec<Lit> = Vec::with_capacity(a.len());
    let mut statically_different = false;
    for (&x, &y) in a.iter().zip(b) {
        match (x, y) {
            (Bound::Const(u), Bound::Const(v)) => {
                if u != v {
                    statically_different = true;
                }
            }
            (Bound::Const(u), Bound::Lit(l)) | (Bound::Lit(l), Bound::Const(u)) => {
                // The pair differs iff the literal disagrees with the constant.
                diffs.push(if u { !l } else { l });
            }
            (Bound::Lit(p), Bound::Lit(q)) => {
                if p == q {
                    continue; // structurally equal: can never differ
                } else if p == !q {
                    statically_different = true;
                } else {
                    diffs.push(difference(solver, p, q));
                }
            }
        }
    }
    let any = Lit::positive(solver.new_var());
    if statically_different {
        // Some pair differs under every assignment.
        solver.add_clause(&[any]);
        return any;
    }
    // any = OR(diffs); with no candidate pairs the words are identical and
    // `any` is forced false.
    let mut long = Vec::with_capacity(diffs.len() + 1);
    for &d in &diffs {
        solver.add_clause(&[any, !d]);
        long.push(d);
    }
    long.push(!any);
    solver.add_clause(&long);
    any
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SatResult, Solver};

    #[test]
    fn assert_value_fixes_literals() {
        let mut s = Solver::new();
        let a = Lit::positive(s.new_var());
        assert_value(&mut s, a, false);
        match s.solve() {
            SatResult::Sat(m) => assert!(!m.lit_value(a)),
            SatResult::Unsat => panic!("satisfiable"),
            SatResult::Interrupted => panic!("no SolveControl installed"),
        }
    }

    #[test]
    fn equal_words_propagate() {
        let mut s = Solver::new();
        let a: Vec<Lit> = (0..3).map(|_| Lit::positive(s.new_var())).collect();
        let b: Vec<Lit> = (0..3).map(|_| Lit::positive(s.new_var())).collect();
        assert_equal_words(&mut s, &a, &b);
        assert_values(&mut s, &a, &[true, false, true]);
        match s.solve() {
            SatResult::Sat(m) => {
                assert!(m.lit_value(b[0]));
                assert!(!m.lit_value(b[1]));
                assert!(m.lit_value(b[2]));
            }
            SatResult::Unsat => panic!("satisfiable"),
            SatResult::Interrupted => panic!("no SolveControl installed"),
        }
    }

    #[test]
    fn any_difference_is_unsat_for_tied_words() {
        let mut s = Solver::new();
        let a: Vec<Lit> = (0..4).map(|_| Lit::positive(s.new_var())).collect();
        let b: Vec<Lit> = (0..4).map(|_| Lit::positive(s.new_var())).collect();
        assert_equal_words(&mut s, &a, &b);
        let diff = any_difference(&mut s, &a, &b);
        assert_eq!(s.solve_with_assumptions(&[diff]), SatResult::Unsat);
        // Without the assumption the formula is satisfiable.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn any_difference_finds_a_differing_assignment() {
        let mut s = Solver::new();
        let a: Vec<Lit> = (0..2).map(|_| Lit::positive(s.new_var())).collect();
        let b: Vec<Lit> = (0..2).map(|_| Lit::positive(s.new_var())).collect();
        let diff = any_difference(&mut s, &a, &b);
        s.add_clause(&[diff]);
        match s.solve() {
            SatResult::Sat(m) => {
                let va: Vec<bool> = a.iter().map(|&l| m.lit_value(l)).collect();
                let vb: Vec<bool> = b.iter().map(|&l| m.lit_value(l)).collect();
                assert_ne!(va, vb);
            }
            SatResult::Unsat => panic!("difference must be achievable"),
            SatResult::Interrupted => panic!("no SolveControl installed"),
        }
    }

    #[test]
    fn bound_values_handle_constants_and_contradictions() {
        // Matching constants add nothing; a contradicting constant makes the
        // database UNSAT.
        let mut s = Solver::new();
        let l = Lit::positive(s.new_var());
        assert_bound_values(&mut s, &[Bound::Const(true), Bound::Lit(l)], &[true, false]);
        match s.solve() {
            SatResult::Sat(m) => assert!(!m.lit_value(l)),
            SatResult::Unsat => panic!("satisfiable"),
            SatResult::Interrupted => panic!("no SolveControl installed"),
        }
        assert_bound(&mut s, Bound::Const(false), true);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(!s.is_consistent());
    }

    #[test]
    fn any_difference_bounds_simplifies_statically() {
        // Identical literals and equal constants → difference impossible.
        let mut s = Solver::new();
        let l = Lit::positive(s.new_var());
        let same = [Bound::Lit(l), Bound::Const(true)];
        let diff = any_difference_bounds(&mut s, &same, &same);
        assert_eq!(s.solve_with_assumptions(&[diff]), SatResult::Unsat);

        // A constant/constant mismatch → difference guaranteed.
        let mut s = Solver::new();
        let diff = any_difference_bounds(&mut s, &[Bound::Const(true)], &[Bound::Const(false)]);
        match s.solve() {
            SatResult::Sat(m) => assert!(m.lit_value(diff)),
            SatResult::Unsat => panic!("satisfiable"),
            SatResult::Interrupted => panic!("no SolveControl installed"),
        }

        // Constant vs. literal → the difference tracks the literal.
        let mut s = Solver::new();
        let l = Lit::positive(s.new_var());
        let diff = any_difference_bounds(&mut s, &[Bound::Const(false)], &[Bound::Lit(l)]);
        s.add_clause(&[diff]);
        match s.solve() {
            SatResult::Sat(m) => assert!(m.lit_value(l), "difference forces l = 1"),
            SatResult::Unsat => panic!("satisfiable"),
            SatResult::Interrupted => panic!("no SolveControl installed"),
        }
    }

    #[test]
    #[should_panic(expected = "same width")]
    fn mismatched_word_widths_panic() {
        let mut s = Solver::new();
        let a = vec![Lit::positive(s.new_var())];
        let b = vec![];
        assert_equal_words(&mut s, &a, &b);
    }
}
