//! The retained reference CDCL solver (pre-arena implementation).
//!
//! This is the original correct-but-naive MiniSat port the workspace shipped
//! before the arena-based [`crate::Solver`] replaced it on the hot path:
//! clauses live in a `Vec<Clause>`-of-`Vec<Lit>` store, conflict analysis
//! clones every resolved clause, learnt clauses accumulate forever (no
//! reduce-DB, no minimization) and binary clauses go through the generic
//! watch machinery. It is kept for the same reason `sim::Simulator` outlived
//! `sim::PackedSimulator`: as the behavioral baseline that the differential
//! fuzz suite (`crates/sat/tests/solver_fuzz.rs`) pins the fast engine
//! against, and as the "pre-PR engine" leg of the `sat_attack_throughput`
//! benchmark.
//!
//! The implementation follows the classic MiniSat architecture: two-literal
//! watches, first-UIP conflict analysis with non-chronological backjumping,
//! VSIDS variable activities with an indexed max-heap, phase saving and Luby
//! restarts. Clauses can be added incrementally between `solve` calls and a
//! query can be solved under a set of assumption literals.

use crate::engine::{ClauseSink, Model, SatEngine, SatResult, SolveControl, SolverStats};
use crate::types::{Lit, Var};

const LBOOL_FALSE: u8 = 0;
const LBOOL_TRUE: u8 = 1;
const LBOOL_UNDEF: u8 = 2;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    clause: u32,
    blocker: Lit,
}

/// Reference CDCL SAT solver with the same public surface as the arena-based
/// [`crate::Solver`]. See the [module documentation](self) for why it exists.
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assign: Vec<u8>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: Vec<Var>,
    heap_pos: Vec<usize>,
    phase: Vec<bool>,
    seen: Vec<bool>,
    /// Failed-assumption subset of the most recent Unsat-under-assumptions
    /// answer (mirrors [`crate::Solver::failed_assumptions`]).
    conflict_core: Vec<Lit>,
    control: SolveControl,
    ok: bool,
    stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

const NOT_IN_HEAP: usize = usize::MAX;

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: Vec::new(),
            heap_pos: Vec::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            conflict_core: Vec::new(),
            control: SolveControl::default(),
            ok: true,
            stats: SolverStats::default(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assign.len());
        self.assign.push(LBOOL_UNDEF);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.heap_pos.push(NOT_IN_HEAP);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_insert(v);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original plus learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Search statistics accumulated so far. The reference engine never
    /// deletes a learnt clause, so `learned` (a live count) is also the total
    /// and `deleted`/`reduces`/`minimized_lits` stay zero.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// `false` once the clause database has been proven unsatisfiable at the
    /// root level; every subsequent query will return [`SatResult::Unsat`].
    pub fn is_consistent(&self) -> bool {
        self.ok
    }

    /// Installs the cooperative-interruption controls applied to every
    /// subsequent solve call, with the same semantics as the arena engine's
    /// [`crate::Solver::set_control`]: per-call budgets checked at
    /// propagation fixpoints, stop callback polled at restart boundaries,
    /// search state preserved across an interruption.
    pub fn set_control(&mut self, control: SolveControl) {
        self.control = control;
    }

    /// After [`Self::solve_with_assumptions`] returned [`SatResult::Unsat`],
    /// the subset of the assumption literals that the refutation actually
    /// used; empty when the clause database is unsatisfiable on its own.
    /// Same semantics as [`crate::Solver::failed_assumptions`].
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.conflict_core
    }

    // ------------------------------------------------------------------
    // Assignment helpers
    // ------------------------------------------------------------------

    fn lit_value(&self, lit: Lit) -> u8 {
        let a = self.assign[lit.var().index()];
        if a == LBOOL_UNDEF {
            LBOOL_UNDEF
        } else {
            u8::from((a == LBOOL_TRUE) != lit.is_negative())
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.lit_value(lit), LBOOL_UNDEF);
        let v = lit.var().index();
        self.assign[v] = if lit.is_positive() {
            LBOOL_TRUE
        } else {
            LBOOL_FALSE
        };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    fn backtrack(&mut self, target_level: u32) {
        if self.decision_level() <= target_level {
            return;
        }
        let keep = self.trail_lim[target_level as usize];
        for i in (keep..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            self.phase[v.index()] = self.assign[v.index()] == LBOOL_TRUE;
            self.assign[v.index()] = LBOOL_UNDEF;
            self.reason[v.index()] = None;
            self.heap_insert(v);
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(target_level as usize);
        self.qhead = self.trail.len();
    }

    // ------------------------------------------------------------------
    // Clause management
    // ------------------------------------------------------------------

    /// Adds a clause. Returns `false` if the clause database became
    /// unsatisfiable at the root level (the solver stays usable but every
    /// query will report UNSAT).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        self.backtrack(0);
        // Normalize: sort, dedup, drop false literals, detect tautologies and
        // satisfied clauses.
        let mut clause: Vec<Lit> = lits.to_vec();
        clause.sort_unstable();
        clause.dedup();
        let mut normalized = Vec::with_capacity(clause.len());
        let mut prev: Option<Lit> = None;
        for &lit in &clause {
            assert!(
                lit.var().index() < self.num_vars(),
                "literal references an unallocated variable"
            );
            if let Some(p) = prev {
                if p == !lit {
                    return true; // tautology: trivially satisfied
                }
            }
            match self.lit_value(lit) {
                LBOOL_TRUE => return true, // already satisfied at level 0
                LBOOL_FALSE => {}          // drop falsified literal
                _ => normalized.push(lit),
            }
            prev = Some(lit);
        }
        match normalized.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(normalized[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watch(normalized[0], idx, normalized[1]);
                self.watch(normalized[1], idx, normalized[0]);
                self.clauses.push(Clause { lits: normalized });
                true
            }
        }
    }

    fn watch(&mut self, lit: Lit, clause: u32, blocker: Lit) {
        // A clause watching `lit` must be revisited when `¬lit` is asserted,
        // i.e. when `lit` becomes false; we index the watch list by the
        // falsifying literal.
        self.watches[(!lit).code()].push(Watcher { clause, blocker });
    }

    // ------------------------------------------------------------------
    // Propagation
    // ------------------------------------------------------------------

    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut watchers = std::mem::take(&mut self.watches[p.code()]);
            let mut kept = 0;
            let mut conflict = None;
            let mut i = 0;
            while i < watchers.len() {
                let w = watchers[i];
                i += 1;
                if self.lit_value(w.blocker) == LBOOL_TRUE {
                    watchers[kept] = w;
                    kept += 1;
                    continue;
                }
                let cid = w.clause as usize;
                // Make sure the false literal (¬p) sits at position 1.
                let false_lit = !p;
                if self.clauses[cid].lits[0] == false_lit {
                    self.clauses[cid].lits.swap(0, 1);
                }
                let first = self.clauses[cid].lits[0];
                if first != w.blocker && self.lit_value(first) == LBOOL_TRUE {
                    watchers[kept] = Watcher {
                        clause: w.clause,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[cid].lits.len() {
                    if self.lit_value(self.clauses[cid].lits[k]) != LBOOL_FALSE {
                        self.clauses[cid].lits.swap(1, k);
                        let new_watch = self.clauses[cid].lits[1];
                        self.watch(new_watch, w.clause, first);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                watchers[kept] = w;
                kept += 1;
                if self.lit_value(first) == LBOOL_FALSE {
                    // Conflict: keep the remaining watchers and bail out.
                    while i < watchers.len() {
                        watchers[kept] = watchers[i];
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(w.clause);
                } else {
                    self.enqueue(first, Some(w.clause));
                }
            }
            watchers.truncate(kept);
            self.watches[p.code()] = watchers;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Conflict analysis
    // ------------------------------------------------------------------

    fn bump_var(&mut self, var: Var) {
        self.activity[var.index()] += self.var_inc;
        if self.activity[var.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap_update(var);
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut conflict: u32) -> (Vec<Lit>, u32) {
        let current_level = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // slot for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            let clause_lits = self.clauses[conflict as usize].lits.clone();
            let skip = usize::from(p.is_some());
            for &q in &clause_lits[skip..] {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal to resolve on: the most recently
            // assigned literal that is marked as seen.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            p = Some(pl);
            if counter == 0 {
                learnt[0] = !pl;
                break;
            }
            conflict = self.reason[pl.var().index()]
                .expect("non-decision literal on the conflict side must have a reason");
        }

        // Backjump level: highest level among the non-asserting literals.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };

        for lit in &learnt {
            self.seen[lit.var().index()] = false;
        }
        (learnt, backtrack_level)
    }

    /// MiniSat `analyzeFinal`: the assumption `p` was found false during
    /// assumption re-assertion. Computes the assumption subset its
    /// implication rests on into `conflict_core` (see the arena engine's
    /// `analyze_final` for the walk's invariants).
    fn analyze_final(&mut self, p: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let x = self.trail[i].var();
            if !self.seen[x.index()] {
                continue;
            }
            match self.reason[x.index()] {
                None => {
                    debug_assert!(self.level[x.index()] > 0);
                    self.conflict_core.push(self.trail[i]);
                }
                Some(c) => {
                    // Position 0 is the asserted literal itself.
                    for k in 1..self.clauses[c as usize].lits.len() {
                        let q = self.clauses[c as usize].lits[k];
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[x.index()] = false;
        }
        self.seen[p.var().index()] = false;
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>) {
        self.stats.learned += 1;
        if learnt.len() == 1 {
            self.enqueue(learnt[0], None);
        } else {
            let idx = self.clauses.len() as u32;
            self.watch(learnt[0], idx, learnt[1]);
            self.watch(learnt[1], idx, learnt[0]);
            let asserting = learnt[0];
            self.clauses.push(Clause { lits: learnt });
            self.enqueue(asserting, Some(idx));
        }
    }

    // ------------------------------------------------------------------
    // Branching heap (VSIDS)
    // ------------------------------------------------------------------

    fn heap_insert(&mut self, var: Var) {
        if self.heap_pos[var.index()] != NOT_IN_HEAP {
            return;
        }
        self.heap.push(var);
        self.heap_pos[var.index()] = self.heap.len() - 1;
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_update(&mut self, var: Var) {
        let pos = self.heap_pos[var.index()];
        if pos != NOT_IN_HEAP {
            self.heap_sift_up(pos);
        }
    }

    fn heap_sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.activity[self.heap[pos].index()] <= self.activity[self.heap[parent].index()] {
                break;
            }
            self.heap_swap(pos, parent);
            pos = parent;
        }
    }

    fn heap_sift_down(&mut self, mut pos: usize) {
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut largest = pos;
            if left < self.heap.len()
                && self.activity[self.heap[left].index()]
                    > self.activity[self.heap[largest].index()]
            {
                largest = left;
            }
            if right < self.heap.len()
                && self.activity[self.heap[right].index()]
                    > self.activity[self.heap[largest].index()]
            {
                largest = right;
            }
            if largest == pos {
                break;
            }
            self.heap_swap(pos, largest);
            pos = largest;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_pos[self.heap[a].index()] = a;
        self.heap_pos[self.heap[b].index()] = b;
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.len() - 1;
        self.heap_swap(0, last);
        self.heap.pop();
        self.heap_pos[top.index()] = NOT_IN_HEAP;
        if !self.heap.is_empty() {
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap_pop() {
            if self.assign[v.index()] == LBOOL_UNDEF {
                return Some(v);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Main search
    // ------------------------------------------------------------------

    /// `true` once this call has spent its conflict or propagation budget.
    fn budget_exhausted(&self, conflicts_at_entry: u64, propagations_at_entry: u64) -> bool {
        if let Some(max) = self.control.max_conflicts {
            if self.stats.conflicts - conflicts_at_entry >= max {
                return true;
            }
        }
        if let Some(max) = self.control.max_propagations {
            if self.stats.propagations - propagations_at_entry >= max {
                return true;
            }
        }
        false
    }

    /// Polls the installed stop callback (restart boundaries only).
    fn stop_requested(&self) -> bool {
        self.control.should_stop.as_ref().is_some_and(|stop| stop())
    }

    /// Solves the current clause database.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves the clause database under the given assumption literals.
    ///
    /// Assumptions are treated as forced initial decisions: if the formula is
    /// unsatisfiable only because of them, the solver returns
    /// [`SatResult::Unsat`] but stays usable, and a later query without those
    /// assumptions may succeed.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        self.conflict_core.clear();
        if !self.ok {
            return SatResult::Unsat;
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }

        // The stop callback is polled once up front so a call whose deadline
        // already passed unwinds before paying for any search.
        if self.stop_requested() {
            return SatResult::Interrupted;
        }

        let conflicts_at_entry = self.stats.conflicts;
        let propagations_at_entry = self.stats.propagations;
        let mut conflicts_since_restart = 0u64;
        // Per-call Luby index: seeding from the global restart counter would
        // start a fresh query deep in the sequence after a long session.
        let mut call_restarts = 0u64;
        let mut restart_threshold = 100u64 * crate::solver::luby(call_restarts);

        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                // Conflicts at or below the assumption prefix learn too (see
                // the arena engine); unsatisfiability under the assumptions
                // surfaces in the re-assertion loop below.
                let (learnt, backtrack_level) = self.analyze(conflict);
                // The backjump may land inside (or below) the assumption
                // prefix; that is sound here because the decision loop below
                // re-asserts assumptions in order before any free decision,
                // running final analysis if a learnt clause now falsifies
                // one.
                self.backtrack(backtrack_level);
                self.record_learnt(learnt);
                self.decay_activities();
            } else {
                // Interruption checks happen only at propagation fixpoints:
                // unwinding here leaves no half-propagated trail behind.
                if self.budget_exhausted(conflicts_at_entry, propagations_at_entry) {
                    self.backtrack(0);
                    return SatResult::Interrupted;
                }
                if conflicts_since_restart >= restart_threshold {
                    self.stats.restarts += 1;
                    call_restarts += 1;
                    conflicts_since_restart = 0;
                    restart_threshold = 100 * crate::solver::luby(call_restarts);
                    if self.stop_requested() {
                        self.backtrack(0);
                        return SatResult::Interrupted;
                    }
                    self.backtrack(assumptions.len() as u32);
                }
                // Assumption decisions first.
                let next_assumption = self.decision_level() as usize;
                if next_assumption < assumptions.len() {
                    let a = assumptions[next_assumption];
                    match self.lit_value(a) {
                        LBOOL_TRUE => {
                            // Already implied: create an empty decision level
                            // so that level bookkeeping still lines up.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBOOL_FALSE => {
                            // The formula implies ¬a: final analysis exposes
                            // which assumptions the refutation used.
                            self.analyze_final(a);
                            self.backtrack(0);
                            return SatResult::Unsat;
                        }
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.stats.decisions += 1;
                            self.enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        let model = Model {
                            values: self.assign.iter().map(|&a| a == LBOOL_TRUE).collect(),
                        };
                        self.backtrack(0);
                        return SatResult::Sat(model);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(v, self.phase[v.index()]);
                        self.enqueue(lit, None);
                    }
                }
            }
        }
    }
}

impl ClauseSink for Solver {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        Solver::add_clause(self, lits)
    }

    fn num_vars(&self) -> usize {
        Solver::num_vars(self)
    }

    fn num_clauses(&self) -> usize {
        Solver::num_clauses(self)
    }
}

impl SatEngine for Solver {
    fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        Solver::solve_with_assumptions(self, assumptions)
    }

    fn set_control(&mut self, control: SolveControl) {
        Solver::set_control(self, control)
    }

    fn stats(&self) -> SolverStats {
        Solver::stats(self)
    }

    fn is_consistent(&self) -> bool {
        Solver::is_consistent(self)
    }

    fn failed_assumptions(&self) -> &[Lit] {
        Solver::failed_assumptions(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(solver_vars: &[Var], i: i64) -> Lit {
        let v = solver_vars[(i.unsigned_abs() - 1) as usize];
        Lit::new(v, i > 0)
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[Lit::positive(a)]));
        assert!(s.solve().is_sat());
        assert!(!s.add_clause(&[Lit::negative(a)]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn reference_engine_does_not_support_state_snapshots() {
        // The retained clause store has no exportable arena state; the trait
        // defaults must report that instead of pretending.
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::positive(a)]);
        assert!(SatEngine::export_state(&s, &crate::StateExportOptions::default()).is_none());
        let donor = {
            let mut fast = crate::Solver::new();
            fast.new_var();
            fast.export_state(&crate::StateExportOptions::default())
        };
        assert!(SatEngine::import_state(&mut s, &donor).is_err());
        assert!(s.solve().is_sat());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // p1/p2/h index the pigeon matrix pairwise
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // Variables x[p][h]: pigeon p in hole h.
        let mut s = Solver::new();
        let x: Vec<Vec<Var>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var()).collect())
            .collect();
        for holes in &x {
            s.add_clause(&[Lit::positive(holes[0]), Lit::positive(holes[1])]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    s.add_clause(&[Lit::negative(x[p1][h]), Lit::negative(x[p2][h])]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn assumptions_do_not_poison_the_solver() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::positive(a), Lit::positive(b)]);
        assert_eq!(
            s.solve_with_assumptions(&[Lit::negative(a), Lit::negative(b)]),
            SatResult::Unsat
        );
        assert!(s.solve().is_sat());
        match s.solve_with_assumptions(&[Lit::negative(a)]) {
            SatResult::Sat(m) => {
                assert!(!m.value(a));
                assert!(m.value(b));
            }
            SatResult::Unsat => panic!("satisfiable under ¬a"),
            SatResult::Interrupted => panic!("no SolveControl installed"),
        }
    }

    #[test]
    fn incremental_clause_addition_between_solves() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        s.add_clause(&[lit(&vars, 1), lit(&vars, 2), lit(&vars, 3)]);
        assert!(s.solve().is_sat());
        s.add_clause(&[lit(&vars, -1)]);
        s.add_clause(&[lit(&vars, -2)]);
        match s.solve() {
            SatResult::Sat(m) => assert!(m.value(vars[2])),
            SatResult::Unsat => panic!("still satisfiable"),
            SatResult::Interrupted => panic!("no SolveControl installed"),
        }
        s.add_clause(&[lit(&vars, -3)]);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(!s.is_consistent());
    }

    #[test]
    fn reference_stats_report_zero_deletions() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..6).map(|_| s.new_var()).collect();
        for i in 0..5 {
            s.add_clause(&[Lit::positive(vars[i]), Lit::negative(vars[(i + 1) % 6])]);
        }
        s.solve();
        assert!(s.stats().decisions > 0);
        assert!(s.stats().propagations > 0);
        assert_eq!(s.stats().deleted, 0);
        assert_eq!(s.stats().reduces, 0);
        assert_eq!(s.stats().minimized_lits, 0);
    }
}
