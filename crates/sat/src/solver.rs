//! Conflict-driven clause-learning SAT solver (arena clause store).
//!
//! The solver follows the MiniSat architecture — two-literal watches,
//! first-UIP conflict analysis with non-chronological backjumping, VSIDS
//! variable activities with an indexed max-heap, phase saving and Luby
//! restarts — rebuilt around an attack-scale clause representation:
//!
//! * **Arena clause store.** All clauses of three or more literals live in a
//!   single flat `u32` arena addressed by [`ClauseRef`] offsets. A clause is
//!   a header word (size, learnt flag, relocation mark) followed, for learnt
//!   clauses, by an activity word and an LBD word, then the literal codes.
//!   Propagation therefore walks contiguous memory instead of chasing a
//!   `Vec<Vec<Lit>>` of separate heap allocations.
//! * **Specialized binary watch lists.** Two-literal clauses never enter the
//!   arena: asserting `p` scans a flat `Vec<Lit>` of implied literals, and
//!   the implication reason is the other literal itself, so neither
//!   propagation nor conflict analysis touches clause memory for binaries —
//!   the most common clause size in Tseitin-encoded circuits.
//! * **Learnt-clause management.** Every learnt clause records its LBD
//!   ("glue": distinct decision levels) and carries a bump-decay activity.
//!   When the live learnt count exceeds a geometrically growing limit,
//!   reduce-DB deletes the worst half (highest LBD, then lowest activity),
//!   protecting glue clauses (LBD ≤ 2) and clauses locked as propagation
//!   reasons. Freed arena space is reclaimed by a compacting garbage
//!   collector once a third of the arena is dead.
//! * **Learnt minimization.** Before a learnt clause is stored, literals
//!   whose reason clause is covered by the remaining learnt literals (plus
//!   root-level facts) are removed by self-subsumption resolution, shrinking
//!   the clause database the DIP loop accumulates.
//!
//! Conflict analysis reads literals straight out of the arena — the old
//! implementation cloned every resolved clause, which dominated long runs.
//! The pre-arena solver is retained unchanged as [`crate::reference::Solver`]
//! and pinned against this one by the differential fuzz suite.
//!
//! Clauses can be added incrementally between `solve` calls and a query can
//! be solved under a set of assumption literals, which is how the attack
//! loop grows the set of input/output constraints DIP by DIP.

use crate::engine::{
    ClauseSink, LearntClause, Model, SatEngine, SatResult, SolveControl, SolverState, SolverStats,
    StateExportOptions,
};
use crate::types::{Lit, Var};

const LBOOL_FALSE: u8 = 0;
const LBOOL_TRUE: u8 = 1;
const LBOOL_UNDEF: u8 = 2;

/// Offset of a clause in the arena. The header word sits at this offset.
type ClauseRef = u32;

/// Header bit: the clause is learnt (has activity + LBD words).
const HDR_LEARNT: u32 = 1;
/// Header bit: the clause has been relocated during garbage collection; the
/// word after the header holds the forwarding [`ClauseRef`].
const HDR_RELOC: u32 = 2;
/// Shift of the clause size within the header word.
const HDR_SIZE_SHIFT: u32 = 2;

/// Reason for a variable assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    /// Decision or assumption (no reason clause).
    None,
    /// Propagated by an arena clause; its first literal is the asserted one.
    Clause(ClauseRef),
    /// Propagated by a binary clause `(asserted ∨ other)`; only the other
    /// literal needs to be remembered.
    Binary(Lit),
}

/// Falsified clause discovered by propagation.
#[derive(Debug, Clone, Copy)]
enum Conflict {
    /// An arena clause.
    Clause(ClauseRef),
    /// A binary clause, given by its two (both false) literals.
    Binary(Lit, Lit),
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    clause: ClauseRef,
    blocker: Lit,
}

/// Restart policy of the search loop.
///
/// Both policies backtrack to the assumption prefix, poll the stop callback
/// and bump `stats.restarts`; they differ only in *when* a restart fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartMode {
    /// Static Luby schedule (unit 100 conflicts), restarted per call.
    /// Retained as the differential baseline: [`crate::reference::Solver`]
    /// restarts this way.
    Luby,
    /// Glucose-style dynamic restarts: restart as soon as the average LBD of
    /// the last `LBD_QUEUE_LEN` learnt clauses exceeds the running global
    /// LBD average by 1/`LBD_RESTART_MARGIN` — the search is producing
    /// worse-than-usual clauses, so abandon the current branch early. The
    /// default of the fast engine.
    #[default]
    DynamicLbd,
}

/// Window of recent learnt-clause LBDs driving [`RestartMode::DynamicLbd`].
pub const LBD_QUEUE_LEN: usize = 50;
/// A dynamic restart fires when `recent_avg * LBD_RESTART_MARGIN >
/// global_avg * (LBD_RESTART_MARGIN + 1)` — i.e. the recent average is more
/// than `1 + 1/LBD_RESTART_MARGIN` times the global one (Glucose's K = 0.8).
const LBD_RESTART_MARGIN: u128 = 4;

/// Conflicts between forced stop-callback polls when no restart fires:
/// dynamic restarts can go quiet on an easy branch, and a deadline must not
/// wait on the restart heuristic.
const STOP_POLL_CONFLICTS: u64 = 4096;

/// CDCL SAT solver. The module-level comment above describes the clause-store
/// design; see the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Solver {
    /// Flat clause store; see the module docs for the layout.
    arena: Vec<u32>,
    /// Arena words occupied by deleted clauses, reclaimable by GC.
    wasted: usize,
    /// Problem clauses of size ≥ 3 (arena offsets).
    clauses: Vec<ClauseRef>,
    /// Learnt clauses of size ≥ 3 (arena offsets).
    learnts: Vec<ClauseRef>,
    /// Problem binary clauses (stored only in `bin_watches`).
    num_bin: usize,
    /// Learnt binary clauses (never deleted by reduce-DB).
    num_bin_learnt: usize,
    /// The learnt binaries themselves. `bin_watches` mixes problem and
    /// learnt binaries indistinguishably, so state export keeps its own
    /// record; grows in lockstep with `num_bin_learnt`.
    learnt_bins: Vec<(Lit, Lit)>,
    /// Watch lists for arena clauses, indexed by the falsifying literal code.
    watches: Vec<Vec<Watcher>>,
    /// Binary watch lists: `bin_watches[p.code()]` holds every literal
    /// implied by asserting `p` through a binary clause.
    bin_watches: Vec<Vec<Lit>>,
    assign: Vec<u8>,
    level: Vec<u32>,
    reason: Vec<Reason>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    heap: Vec<Var>,
    heap_pos: Vec<usize>,
    phase: Vec<bool>,
    seen: Vec<bool>,
    /// Scratch: literals whose `seen` flag must be reset after analysis.
    clear_buf: Vec<Lit>,
    /// Scratch: per-decision-level stamps for LBD computation.
    level_stamp: Vec<u32>,
    stamp_gen: u32,
    /// Live-learnt-clause count that triggers the next reduce-DB pass.
    max_learnts: f64,
    /// Fixed learnt limit override (testing / tuning); disables the adaptive
    /// geometric schedule.
    learnt_limit_override: Option<usize>,
    /// Restart policy; see [`RestartMode`].
    restart_mode: RestartMode,
    /// Ring buffer of the last [`LBD_QUEUE_LEN`] learnt-clause LBDs.
    lbd_queue: Vec<u32>,
    /// Next write position in `lbd_queue`.
    lbd_queue_pos: usize,
    /// Sum over the live entries of `lbd_queue`.
    lbd_queue_sum: u64,
    /// Sum of every learnt-clause LBD since the solver was created.
    lbd_global_sum: u64,
    /// Count behind `lbd_global_sum`.
    lbd_global_count: u64,
    /// Failed-assumption subset of the most recent Unsat-under-assumptions
    /// answer (MiniSat `analyzeFinal`); empty when the database itself is
    /// unsatisfiable.
    conflict_core: Vec<Lit>,
    /// Cooperative-interruption controls (per-call budgets + stop callback).
    control: SolveControl,
    ok: bool,
    stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

const NOT_IN_HEAP: usize = usize::MAX;

/// Growth factor of the learnt-clause limit after each reduce-DB pass.
const LEARNT_LIMIT_GROWTH: f64 = 1.1;
/// Lower bound on the learnt-clause limit (adaptive schedule).
const LEARNT_LIMIT_FLOOR: f64 = 512.0;

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            arena: Vec::new(),
            wasted: 0,
            clauses: Vec::new(),
            learnts: Vec::new(),
            num_bin: 0,
            num_bin_learnt: 0,
            learnt_bins: Vec::new(),
            watches: Vec::new(),
            bin_watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: Vec::new(),
            heap_pos: Vec::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            clear_buf: Vec::new(),
            level_stamp: Vec::new(),
            stamp_gen: 0,
            max_learnts: 0.0,
            learnt_limit_override: None,
            restart_mode: RestartMode::default(),
            lbd_queue: Vec::new(),
            lbd_queue_pos: 0,
            lbd_queue_sum: 0,
            lbd_global_sum: 0,
            lbd_global_count: 0,
            conflict_core: Vec::new(),
            control: SolveControl::default(),
            ok: true,
            stats: SolverStats::default(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assign.len());
        self.assign.push(LBOOL_UNDEF);
        self.level.push(0);
        self.reason.push(Reason::None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.heap_pos.push(NOT_IN_HEAP);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.heap_insert(v);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of live clauses (original plus learnt, including binaries).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len() + self.learnts.len() + self.num_bin + self.num_bin_learnt
    }

    /// Search statistics accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// `false` once the clause database has been proven unsatisfiable at the
    /// root level; every subsequent query will return [`SatResult::Unsat`].
    pub fn is_consistent(&self) -> bool {
        self.ok
    }

    /// Installs the cooperative-interruption controls applied to every
    /// subsequent solve call. See [`SolveControl`] for the semantics: budgets
    /// are per call, checked at propagation fixpoints; the stop callback is
    /// polled at restart boundaries. An interrupted call returns
    /// [`SatResult::Interrupted`] with the learnt-clause arena, activities
    /// and phases intact, so a follow-up call resumes the search.
    pub fn set_control(&mut self, control: SolveControl) {
        self.control = control;
    }

    /// Pins the live-learnt-clause limit that triggers reduce-DB to a fixed
    /// value instead of the adaptive geometric schedule (`None` restores the
    /// default). Intended for tests that must force clause deletion on small
    /// formulas, and for tuning experiments.
    pub fn set_learnt_limit(&mut self, limit: Option<usize>) {
        self.learnt_limit_override = limit;
        match limit {
            Some(l) => self.max_learnts = l as f64,
            // Drop any pinned value so the next solve re-derives the
            // adaptive target instead of keeping a stale override.
            None => self.max_learnts = 0.0,
        }
    }

    /// Selects the restart policy of subsequent solve calls. The default is
    /// [`RestartMode::DynamicLbd`]; the differential suites pin
    /// [`RestartMode::Luby`] to stay comparable with the reference engine.
    pub fn set_restart_mode(&mut self, mode: RestartMode) {
        self.restart_mode = mode;
    }

    /// The restart policy currently in effect.
    pub fn restart_mode(&self) -> RestartMode {
        self.restart_mode
    }

    // ------------------------------------------------------------------
    // Search-state export / import
    // ------------------------------------------------------------------

    /// Serializes the learnt search state: every learnt clause (binaries
    /// included) with its glue and activity, the VSIDS activities and
    /// increment, saved phases and the restart bookkeeping. `options` can
    /// prune the clause set — drop clauses above a glue cap, and bound the
    /// total literal count keeping ascending-glue (then descending-activity)
    /// clauses first — so a snapshot of a pathological run stays bounded.
    pub fn export_state(&self, options: &StateExportOptions) -> SolverState {
        let glue_ok = |lbd: u32| options.glue_cap.is_none_or(|cap| lbd <= cap);
        // Binaries first (glue ≤ 2 by construction, two literals each), then
        // arena learnts ranked best-first so the literal cap cuts the
        // cheapest-to-rederive tail.
        let mut ranked: Vec<ClauseRef> = self
            .learnts
            .iter()
            .copied()
            .filter(|&c| glue_ok(self.clause_lbd(c)))
            .collect();
        ranked.sort_by(|&a, &b| {
            self.clause_lbd(a)
                .cmp(&self.clause_lbd(b))
                .then_with(|| self.clause_activity(b).total_cmp(&self.clause_activity(a)))
        });

        let mut clauses = Vec::with_capacity(self.learnt_bins.len() + ranked.len());
        let mut literals = 0usize;
        let mut push = |clause: LearntClause| -> bool {
            let next = literals + clause.lits.len();
            if options.literal_cap.is_some_and(|cap| next > cap) {
                return false;
            }
            literals = next;
            clauses.push(clause);
            true
        };
        for &(a, b) in &self.learnt_bins {
            if !push(LearntClause {
                lbd: 2,
                activity: 0.0,
                lits: vec![a, b],
            }) {
                break;
            }
        }
        for &c in &ranked {
            let lits = (0..self.clause_size(c))
                .map(|i| self.clause_lit(c, i))
                .collect();
            if !push(LearntClause {
                lbd: self.clause_lbd(c),
                activity: self.clause_activity(c),
                lits,
            }) {
                break;
            }
        }

        SolverState {
            num_vars: self.num_vars() as u32,
            var_inc: self.var_inc,
            cla_inc: self.cla_inc,
            luby_restarts: self.restart_mode == RestartMode::Luby,
            lbd_global_sum: self.lbd_global_sum,
            lbd_global_count: self.lbd_global_count,
            activity: self.activity.clone(),
            phase: self.phase.clone(),
            clauses,
        }
    }

    /// Restores a snapshot produced by [`Self::export_state`] on a solver
    /// holding the same clause database and variable numbering. Learnt
    /// clauses are re-attached (normalized against the current root-level
    /// assignment), activities/phases replace the current ones and the
    /// branching heap is rebuilt. Validates the whole snapshot before
    /// touching anything and returns a diagnostic on mismatch; see
    /// [`SatEngine::import_state`] for the compatibility contract the caller
    /// must uphold.
    pub fn import_state(&mut self, state: &SolverState) -> Result<(), String> {
        if !self.ok {
            return Err("clause database is already unsatisfiable at the root".to_string());
        }
        let n = self.num_vars();
        if state.num_vars as usize != n {
            return Err(format!(
                "variable count mismatch: snapshot has {}, solver has {n}",
                state.num_vars
            ));
        }
        if state.activity.len() != n || state.phase.len() != n {
            return Err(format!(
                "activity/phase length mismatch: {}/{} for {n} variables",
                state.activity.len(),
                state.phase.len()
            ));
        }
        if !state.var_inc.is_finite()
            || state.var_inc <= 0.0
            || !state.cla_inc.is_finite()
            || state.cla_inc <= 0.0
            || state.activity.iter().any(|a| !a.is_finite() || *a < 0.0)
        {
            return Err("non-finite or negative activity values".to_string());
        }
        for clause in &state.clauses {
            if clause.lits.len() < 2 {
                return Err(format!(
                    "learnt clause of {} literal(s); snapshots carry size >= 2 only",
                    clause.lits.len()
                ));
            }
            if let Some(l) = clause.lits.iter().find(|l| l.var().index() >= n) {
                return Err(format!(
                    "literal references variable {} beyond the solver's {n}",
                    l.var().index()
                ));
            }
        }

        self.backtrack(0);
        self.activity.copy_from_slice(&state.activity);
        self.var_inc = state.var_inc;
        self.cla_inc = state.cla_inc;
        self.restart_mode = if state.luby_restarts {
            RestartMode::Luby
        } else {
            RestartMode::DynamicLbd
        };
        self.lbd_global_sum = state.lbd_global_sum;
        self.lbd_global_count = state.lbd_global_count;
        self.clear_lbd_window();
        self.phase.copy_from_slice(&state.phase);
        // Activities changed wholesale: restore the heap invariant in place.
        for i in (0..self.heap.len() / 2).rev() {
            self.heap_sift_down(i);
        }
        for clause in &state.clauses {
            self.import_learnt(clause);
        }
        // Imported units (clauses shrunk by root-level facts) propagate now.
        if self.propagate().is_some() {
            self.ok = false;
        }
        Ok(())
    }

    /// Re-attaches one snapshot clause, normalized against the current
    /// root-level assignment: satisfied clauses are dropped, false literals
    /// removed. Unlike [`Self::record_learnt`] this asserts nothing — the
    /// clause is not a conflict product here, just database content.
    fn import_learnt(&mut self, clause: &LearntClause) {
        debug_assert_eq!(self.decision_level(), 0);
        let mut kept: Vec<Lit> = Vec::with_capacity(clause.lits.len());
        for &l in &clause.lits {
            match self.lit_value(l) {
                LBOOL_TRUE => return, // permanently satisfied: nothing to keep
                LBOOL_FALSE => {}
                _ => kept.push(l),
            }
        }
        match kept.len() {
            0 => self.ok = false,
            1 => {
                self.enqueue(kept[0], Reason::None);
            }
            2 => {
                self.watch_bin(kept[0], kept[1]);
                self.num_bin_learnt += 1;
                self.learnt_bins.push((kept[0], kept[1]));
                self.stats.learned += 1;
            }
            _ => {
                let c = self.alloc_clause(&kept, true, clause.lbd.min(kept.len() as u32));
                self.arena[c as usize + 1] = clause.activity.to_bits();
                self.attach(c);
                self.learnts.push(c);
                self.stats.learned += 1;
            }
        }
    }

    /// After [`Self::solve_with_assumptions`] returned [`SatResult::Unsat`],
    /// the subset of the assumption literals that the refutation actually
    /// used (MiniSat `analyzeFinal`). Empty when the clause database is
    /// unsatisfiable on its own — so an empty core after an assumption query
    /// means no change of assumptions can recover satisfiability. Cleared by
    /// the next solve call.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.conflict_core
    }

    // ------------------------------------------------------------------
    // Arena accessors
    // ------------------------------------------------------------------

    fn clause_size(&self, c: ClauseRef) -> usize {
        (self.arena[c as usize] >> HDR_SIZE_SHIFT) as usize
    }

    fn clause_is_learnt(&self, c: ClauseRef) -> bool {
        self.arena[c as usize] & HDR_LEARNT != 0
    }

    /// Arena index of the first literal of `c`.
    fn lits_base(&self, c: ClauseRef) -> usize {
        c as usize + 1 + 2 * usize::from(self.clause_is_learnt(c))
    }

    fn clause_lit(&self, c: ClauseRef, i: usize) -> Lit {
        Lit::from_code(self.arena[self.lits_base(c) + i] as usize)
    }

    fn clause_lbd(&self, c: ClauseRef) -> u32 {
        debug_assert!(self.clause_is_learnt(c));
        self.arena[c as usize + 2]
    }

    fn clause_activity(&self, c: ClauseRef) -> f32 {
        debug_assert!(self.clause_is_learnt(c));
        f32::from_bits(self.arena[c as usize + 1])
    }

    /// Total arena words a clause of `size` literals occupies.
    fn clause_words(size: usize, learnt: bool) -> usize {
        1 + 2 * usize::from(learnt) + size
    }

    fn alloc_clause(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 3, "binary clauses bypass the arena");
        // ClauseRefs are u32 offsets; past 2^32 words a cast would silently
        // alias a low offset and corrupt the clause store.
        assert!(
            self.arena.len() + Self::clause_words(lits.len(), learnt) <= u32::MAX as usize,
            "clause arena exceeds the 2^32-word ClauseRef address space"
        );
        let c = self.arena.len() as ClauseRef;
        self.arena
            .push(((lits.len() as u32) << HDR_SIZE_SHIFT) | u32::from(learnt));
        if learnt {
            self.arena.push(0f32.to_bits());
            self.arena.push(lbd);
        }
        self.arena.extend(lits.iter().map(|l| l.code() as u32));
        c
    }

    /// Registers the watches of an arena clause (its first two literals).
    fn attach(&mut self, c: ClauseRef) {
        let l0 = self.clause_lit(c, 0);
        let l1 = self.clause_lit(c, 1);
        self.watches[(!l0).code()].push(Watcher {
            clause: c,
            blocker: l1,
        });
        self.watches[(!l1).code()].push(Watcher {
            clause: c,
            blocker: l0,
        });
    }

    /// Registers a binary clause `(a ∨ b)` in the binary watch lists.
    fn watch_bin(&mut self, a: Lit, b: Lit) {
        self.bin_watches[(!a).code()].push(b);
        self.bin_watches[(!b).code()].push(a);
    }

    // ------------------------------------------------------------------
    // Assignment helpers
    // ------------------------------------------------------------------

    fn lit_value(&self, lit: Lit) -> u8 {
        let a = self.assign[lit.var().index()];
        if a == LBOOL_UNDEF {
            LBOOL_UNDEF
        } else {
            u8::from((a == LBOOL_TRUE) != lit.is_negative())
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: Reason) {
        debug_assert_eq!(self.lit_value(lit), LBOOL_UNDEF);
        let v = lit.var().index();
        self.assign[v] = if lit.is_positive() {
            LBOOL_TRUE
        } else {
            LBOOL_FALSE
        };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    fn backtrack(&mut self, target_level: u32) {
        if self.decision_level() <= target_level {
            return;
        }
        let keep = self.trail_lim[target_level as usize];
        for i in (keep..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            self.phase[v.index()] = self.assign[v.index()] == LBOOL_TRUE;
            self.assign[v.index()] = LBOOL_UNDEF;
            self.reason[v.index()] = Reason::None;
            self.heap_insert(v);
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(target_level as usize);
        self.qhead = self.trail.len();
    }

    // ------------------------------------------------------------------
    // Clause addition
    // ------------------------------------------------------------------

    /// Adds a clause. Returns `false` if the clause database became
    /// unsatisfiable at the root level (the solver stays usable but every
    /// query will report UNSAT).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        self.backtrack(0);
        // Normalize: sort, dedup, drop false literals, detect tautologies and
        // satisfied clauses.
        let mut clause: Vec<Lit> = lits.to_vec();
        clause.sort_unstable();
        clause.dedup();
        let mut normalized = Vec::with_capacity(clause.len());
        let mut prev: Option<Lit> = None;
        for &lit in &clause {
            assert!(
                lit.var().index() < self.num_vars(),
                "literal references an unallocated variable"
            );
            if let Some(p) = prev {
                if p == !lit {
                    return true; // tautology: trivially satisfied
                }
            }
            match self.lit_value(lit) {
                LBOOL_TRUE => return true, // already satisfied at level 0
                LBOOL_FALSE => {}          // drop falsified literal
                _ => normalized.push(lit),
            }
            prev = Some(lit);
        }
        match normalized.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(normalized[0], Reason::None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            2 => {
                self.watch_bin(normalized[0], normalized[1]);
                self.num_bin += 1;
                true
            }
            _ => {
                let c = self.alloc_clause(&normalized, false, 0);
                self.attach(c);
                self.clauses.push(c);
                true
            }
        }
    }

    // ------------------------------------------------------------------
    // Propagation
    // ------------------------------------------------------------------

    fn propagate(&mut self) -> Option<Conflict> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            // Binary clauses first: one flat scan, no arena access. The list
            // is not mutated while scanning (new binaries are only learnt at
            // conflict time), so plain indexing is enough.
            for i in 0..self.bin_watches[p.code()].len() {
                let other = self.bin_watches[p.code()][i];
                match self.lit_value(other) {
                    LBOOL_TRUE => {}
                    LBOOL_FALSE => {
                        self.qhead = self.trail.len();
                        return Some(Conflict::Binary(other, !p));
                    }
                    _ => self.enqueue(other, Reason::Binary(!p)),
                }
            }

            let false_lit = !p;
            let mut watchers = std::mem::take(&mut self.watches[p.code()]);
            let mut kept = 0;
            let mut conflict = None;
            let mut i = 0;
            'watchers: while i < watchers.len() {
                let w = watchers[i];
                i += 1;
                if self.lit_value(w.blocker) == LBOOL_TRUE {
                    watchers[kept] = w;
                    kept += 1;
                    continue;
                }
                let base = self.lits_base(w.clause);
                let size = self.clause_size(w.clause);
                // Make sure the false literal (¬p) sits at position 1.
                if Lit::from_code(self.arena[base] as usize) == false_lit {
                    self.arena.swap(base, base + 1);
                }
                let first = Lit::from_code(self.arena[base] as usize);
                if first != w.blocker && self.lit_value(first) == LBOOL_TRUE {
                    watchers[kept] = Watcher {
                        clause: w.clause,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..size {
                    let lk = Lit::from_code(self.arena[base + k] as usize);
                    if self.lit_value(lk) != LBOOL_FALSE {
                        self.arena.swap(base + 1, base + k);
                        self.watches[(!lk).code()].push(Watcher {
                            clause: w.clause,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting.
                watchers[kept] = w;
                kept += 1;
                if self.lit_value(first) == LBOOL_FALSE {
                    // Conflict: keep the remaining watchers and bail out.
                    while i < watchers.len() {
                        watchers[kept] = watchers[i];
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(Conflict::Clause(w.clause));
                } else {
                    self.enqueue(first, Reason::Clause(w.clause));
                }
            }
            watchers.truncate(kept);
            self.watches[p.code()] = watchers;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Conflict analysis
    // ------------------------------------------------------------------

    fn bump_var(&mut self, var: Var) {
        self.activity[var.index()] += self.var_inc;
        if self.activity[var.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap_update(var);
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
    }

    fn bump_clause(&mut self, c: ClauseRef) {
        let act = self.clause_activity(c) + self.cla_inc as f32;
        self.arena[c as usize + 1] = act.to_bits();
        if act > 1e20 {
            for i in 0..self.learnts.len() {
                let lc = self.learnts[i] as usize;
                let scaled = f32::from_bits(self.arena[lc + 1]) * 1e-20;
                self.arena[lc + 1] = scaled.to_bits();
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Marks `q` seen, bumps its variable and routes it to the counter (same
    /// decision level as the conflict) or the learnt clause (lower level).
    fn analyze_visit(
        &mut self,
        q: Lit,
        current_level: u32,
        counter: &mut usize,
        learnt: &mut Vec<Lit>,
    ) {
        let v = q.var();
        if !self.seen[v.index()] && self.level[v.index()] > 0 {
            self.seen[v.index()] = true;
            self.bump_var(v);
            if self.level[v.index()] >= current_level {
                *counter += 1;
            } else {
                learnt.push(q);
            }
        }
    }

    /// `true` if learnt literal `q` is removable by self-subsumption: every
    /// other literal of its variable's reason clause is already in the learnt
    /// clause (still marked seen) or is a root-level fact, so resolving the
    /// learnt clause with the reason eliminates `q` without adding anything.
    fn literal_is_redundant(&self, q: Lit) -> bool {
        match self.reason[q.var().index()] {
            Reason::None => false,
            Reason::Binary(other) => {
                self.seen[other.var().index()] || self.level[other.var().index()] == 0
            }
            Reason::Clause(c) => {
                let base = self.lits_base(c);
                let size = self.clause_size(c);
                // Position 0 is the asserted literal ¬q itself.
                for k in 1..size {
                    let r = Lit::from_code(self.arena[base + k] as usize);
                    if !self.seen[r.var().index()] && self.level[r.var().index()] > 0 {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Number of distinct decision levels among `lits` (the LBD / glue).
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.stamp_gen = self.stamp_gen.wrapping_add(1);
        if self.stamp_gen == 0 {
            self.level_stamp.clear();
            self.stamp_gen = 1;
        }
        let mut lbd = 0;
        for &l in lits {
            let lv = self.level[l.var().index()] as usize;
            if lv >= self.level_stamp.len() {
                self.level_stamp.resize(lv + 1, 0);
            }
            if self.level_stamp[lv] != self.stamp_gen {
                self.level_stamp[lv] = self.stamp_gen;
                lbd += 1;
            }
        }
        lbd
    }

    /// First-UIP conflict analysis with self-subsumption minimization.
    /// Returns the learnt clause (asserting literal first), the backjump
    /// level and the clause LBD.
    fn analyze(&mut self, confl: Conflict) -> (Vec<Lit>, u32, u32) {
        let current_level = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // slot for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cur = confl;

        loop {
            // Visit the literals of the current (conflict or reason) clause.
            // For reason clauses the asserted literal sits first and is
            // skipped; binary reasons carry just the other literal.
            match cur {
                Conflict::Clause(c) => {
                    if self.clause_is_learnt(c) {
                        self.bump_clause(c);
                    }
                    let base = self.lits_base(c);
                    let size = self.clause_size(c);
                    let skip = usize::from(p.is_some());
                    for k in skip..size {
                        let q = Lit::from_code(self.arena[base + k] as usize);
                        self.analyze_visit(q, current_level, &mut counter, &mut learnt);
                    }
                }
                Conflict::Binary(a, b) => {
                    if p.is_none() {
                        self.analyze_visit(a, current_level, &mut counter, &mut learnt);
                    }
                    self.analyze_visit(b, current_level, &mut counter, &mut learnt);
                }
            }
            // Select the next literal to resolve on: the most recently
            // assigned literal that is marked as seen.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            p = Some(pl);
            if counter == 0 {
                learnt[0] = !pl;
                break;
            }
            cur = match self.reason[pl.var().index()] {
                Reason::Clause(c) => Conflict::Clause(c),
                Reason::Binary(other) => Conflict::Binary(pl, other),
                Reason::None => {
                    unreachable!("non-decision literal on the conflict side must have a reason")
                }
            };
        }

        // Self-subsumption minimization. Removed literals stay `seen` so they
        // can support the redundancy of later literals (their reasons form a
        // DAG ordered by trail position, so this is sound); `clear_buf`
        // remembers everything that must be un-seen afterwards.
        self.clear_buf.clear();
        self.clear_buf.extend_from_slice(&learnt[1..]);
        let mut kept = 1;
        for i in 1..learnt.len() {
            let q = learnt[i];
            if self.literal_is_redundant(q) {
                self.stats.minimized_lits += 1;
            } else {
                learnt[kept] = q;
                kept += 1;
            }
        }
        learnt.truncate(kept);

        // Backjump level: highest level among the non-asserting literals.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };

        let lbd = self.compute_lbd(&learnt);
        for i in 0..self.clear_buf.len() {
            let l = self.clear_buf[i];
            self.seen[l.var().index()] = false;
        }
        (learnt, backtrack_level, lbd)
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>, lbd: u32) {
        self.stats.learned += 1;
        match learnt.len() {
            1 => self.enqueue(learnt[0], Reason::None),
            2 => {
                self.watch_bin(learnt[0], learnt[1]);
                self.num_bin_learnt += 1;
                self.learnt_bins.push((learnt[0], learnt[1]));
                self.enqueue(learnt[0], Reason::Binary(learnt[1]));
            }
            _ => {
                let c = self.alloc_clause(&learnt, true, lbd);
                self.attach(c);
                self.learnts.push(c);
                self.bump_clause(c);
                self.enqueue(learnt[0], Reason::Clause(c));
            }
        }
    }

    /// MiniSat `analyzeFinal`: the assumption `p` was found false during
    /// assumption re-assertion, so the formula is unsatisfiable under the
    /// assumption set. Computes the subset of the assumptions the implication
    /// of `¬p` actually rests on into `conflict_core` by walking the trail
    /// top-down from the seen-marked variables: a marked variable with no
    /// reason is an assumption (free decisions never happen while an
    /// assumption is false), otherwise its reason clause's literals are
    /// marked in turn.
    fn analyze_final(&mut self, p: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let x = self.trail[i].var();
            if !self.seen[x.index()] {
                continue;
            }
            match self.reason[x.index()] {
                Reason::None => {
                    debug_assert!(self.level[x.index()] > 0);
                    self.conflict_core.push(self.trail[i]);
                }
                Reason::Binary(other) => {
                    if self.level[other.var().index()] > 0 {
                        self.seen[other.var().index()] = true;
                    }
                }
                Reason::Clause(c) => {
                    let base = self.lits_base(c);
                    let size = self.clause_size(c);
                    // Position 0 is the asserted literal itself.
                    for k in 1..size {
                        let q = Lit::from_code(self.arena[base + k] as usize);
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[x.index()] = false;
        }
        self.seen[p.var().index()] = false;
    }

    /// Feeds one learnt-clause LBD into the restart bookkeeping: the
    /// since-forever global average and the [`LBD_QUEUE_LEN`]-entry recent
    /// window compared by [`RestartMode::DynamicLbd`].
    fn note_lbd(&mut self, lbd: u32) {
        self.lbd_global_sum += u64::from(lbd);
        self.lbd_global_count += 1;
        if self.lbd_queue.len() < LBD_QUEUE_LEN {
            self.lbd_queue.push(lbd);
        } else {
            self.lbd_queue_sum -= u64::from(self.lbd_queue[self.lbd_queue_pos]);
            self.lbd_queue[self.lbd_queue_pos] = lbd;
            self.lbd_queue_pos = (self.lbd_queue_pos + 1) % LBD_QUEUE_LEN;
        }
        self.lbd_queue_sum += u64::from(lbd);
    }

    /// Empties the recent-LBD window (on restart and at solve entry, so one
    /// query's tail never triggers the next query's first restart).
    fn clear_lbd_window(&mut self) {
        self.lbd_queue.clear();
        self.lbd_queue_pos = 0;
        self.lbd_queue_sum = 0;
    }

    /// `true` when the recent-LBD window is full and its average exceeds the
    /// global average by the Glucose margin (recent · 0.8 > global).
    fn dynamic_restart_due(&self) -> bool {
        self.lbd_queue.len() == LBD_QUEUE_LEN
            && u128::from(self.lbd_queue_sum)
                * u128::from(self.lbd_global_count)
                * LBD_RESTART_MARGIN
                > u128::from(self.lbd_global_sum)
                    * (LBD_QUEUE_LEN as u128)
                    * (LBD_RESTART_MARGIN + 1)
    }

    // ------------------------------------------------------------------
    // Learnt-clause reduction and arena garbage collection
    // ------------------------------------------------------------------

    /// `true` if `c` is the reason of its first literal's assignment (such
    /// clauses must survive reduce-DB).
    fn is_reason(&self, c: ClauseRef) -> bool {
        let first = self.clause_lit(c, 0);
        self.lit_value(first) == LBOOL_TRUE && self.reason[first.var().index()] == Reason::Clause(c)
    }

    /// Detaches and deletes the worst half of the learnt clauses (highest
    /// LBD, then lowest activity), keeping glue clauses (LBD ≤ 2) and
    /// clauses locked as propagation reasons.
    fn reduce_db(&mut self) {
        self.stats.reduces += 1;
        let learnts = std::mem::take(&mut self.learnts);
        let total = learnts.len();
        let mut keep = Vec::with_capacity(total);
        let mut cands = Vec::with_capacity(total);
        for c in learnts {
            if self.clause_lbd(c) <= 2 || self.is_reason(c) {
                keep.push(c);
            } else {
                cands.push(c);
            }
        }
        // Worst first: high LBD, then low activity.
        cands.sort_unstable_by(|&a, &b| {
            self.clause_lbd(b)
                .cmp(&self.clause_lbd(a))
                .then(self.clause_activity(a).total_cmp(&self.clause_activity(b)))
        });
        let remove = (total / 2).min(cands.len());
        for &c in &cands[..remove] {
            self.remove_clause(c);
        }
        keep.extend_from_slice(&cands[remove..]);
        self.learnts = keep;
        if self.wasted * 3 > self.arena.len() {
            self.garbage_collect();
        }
    }

    /// Detaches a learnt clause from its watch lists and marks its arena
    /// words as reclaimable.
    fn remove_clause(&mut self, c: ClauseRef) {
        let l0 = self.clause_lit(c, 0);
        let l1 = self.clause_lit(c, 1);
        self.detach_watch(l0, c);
        self.detach_watch(l1, c);
        self.wasted += Self::clause_words(self.clause_size(c), true);
        self.stats.learned -= 1;
        self.stats.deleted += 1;
    }

    fn detach_watch(&mut self, watched: Lit, c: ClauseRef) {
        let list = &mut self.watches[(!watched).code()];
        let pos = list
            .iter()
            .position(|w| w.clause == c)
            .expect("deleted clause must be watched");
        list.swap_remove(pos);
    }

    /// Compacts the arena, dropping the space of deleted clauses and
    /// rewriting every [`ClauseRef`] (clause lists, watchers, reasons).
    fn garbage_collect(&mut self) {
        let mut old = std::mem::take(&mut self.arena);
        let mut fresh: Vec<u32> = Vec::with_capacity(old.len() - self.wasted);

        fn relocate(old: &mut [u32], fresh: &mut Vec<u32>, c: ClauseRef) -> ClauseRef {
            let ci = c as usize;
            if old[ci] & HDR_RELOC != 0 {
                return old[ci + 1];
            }
            let learnt = old[ci] & HDR_LEARNT != 0;
            let size = (old[ci] >> HDR_SIZE_SHIFT) as usize;
            let words = Solver::clause_words(size, learnt);
            let nc = fresh.len() as ClauseRef;
            fresh.extend_from_slice(&old[ci..ci + words]);
            old[ci] |= HDR_RELOC;
            old[ci + 1] = nc;
            nc
        }

        for list in [&mut self.clauses, &mut self.learnts] {
            for c in list.iter_mut() {
                *c = relocate(&mut old, &mut fresh, *c);
            }
        }
        for wl in &mut self.watches {
            for w in wl.iter_mut() {
                w.clause = relocate(&mut old, &mut fresh, w.clause);
            }
        }
        for r in &mut self.reason {
            if let Reason::Clause(c) = r {
                *c = relocate(&mut old, &mut fresh, *c);
            }
        }
        self.arena = fresh;
        self.wasted = 0;
    }

    // ------------------------------------------------------------------
    // Branching heap (VSIDS)
    // ------------------------------------------------------------------

    fn heap_insert(&mut self, var: Var) {
        if self.heap_pos[var.index()] != NOT_IN_HEAP {
            return;
        }
        self.heap.push(var);
        self.heap_pos[var.index()] = self.heap.len() - 1;
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_update(&mut self, var: Var) {
        let pos = self.heap_pos[var.index()];
        if pos != NOT_IN_HEAP {
            self.heap_sift_up(pos);
        }
    }

    fn heap_sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.activity[self.heap[pos].index()] <= self.activity[self.heap[parent].index()] {
                break;
            }
            self.heap_swap(pos, parent);
            pos = parent;
        }
    }

    fn heap_sift_down(&mut self, mut pos: usize) {
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut largest = pos;
            if left < self.heap.len()
                && self.activity[self.heap[left].index()]
                    > self.activity[self.heap[largest].index()]
            {
                largest = left;
            }
            if right < self.heap.len()
                && self.activity[self.heap[right].index()]
                    > self.activity[self.heap[largest].index()]
            {
                largest = right;
            }
            if largest == pos {
                break;
            }
            self.heap_swap(pos, largest);
            pos = largest;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_pos[self.heap[a].index()] = a;
        self.heap_pos[self.heap[b].index()] = b;
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.len() - 1;
        self.heap_swap(0, last);
        self.heap.pop();
        self.heap_pos[top.index()] = NOT_IN_HEAP;
        if !self.heap.is_empty() {
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap_pop() {
            if self.assign[v.index()] == LBOOL_UNDEF {
                return Some(v);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Main search
    // ------------------------------------------------------------------

    /// `true` once this call has spent its conflict or propagation budget.
    fn budget_exhausted(&self, conflicts_at_entry: u64, propagations_at_entry: u64) -> bool {
        if let Some(max) = self.control.max_conflicts {
            if self.stats.conflicts - conflicts_at_entry >= max {
                return true;
            }
        }
        if let Some(max) = self.control.max_propagations {
            if self.stats.propagations - propagations_at_entry >= max {
                return true;
            }
        }
        false
    }

    /// Polls the installed stop callback (restart boundaries only).
    fn stop_requested(&self) -> bool {
        self.control.should_stop.as_ref().is_some_and(|stop| stop())
    }

    /// Solves the current clause database.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves the clause database under the given assumption literals.
    ///
    /// Assumptions are treated as forced initial decisions: if the formula is
    /// unsatisfiable only because of them, the solver returns
    /// [`SatResult::Unsat`] but stays usable, and a later query without those
    /// assumptions may succeed.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        // An empty core distinguishes "the database is unsatisfiable" from
        // "these assumptions are": it stays empty on every path but the
        // final-analysis one.
        self.conflict_core.clear();
        self.clear_lbd_window();
        if !self.ok {
            return SatResult::Unsat;
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }

        if self.learnt_limit_override.is_none() {
            let problem = (self.clauses.len() + self.num_bin) as f64;
            let target = (problem / 3.0).max(LEARNT_LIMIT_FLOOR);
            if self.max_learnts < target {
                self.max_learnts = target;
            }
        }

        // The stop callback is polled once up front so a call whose deadline
        // already passed unwinds before paying for any search.
        if self.stop_requested() {
            return SatResult::Interrupted;
        }

        let conflicts_at_entry = self.stats.conflicts;
        let propagations_at_entry = self.stats.propagations;
        let mut conflicts_since_restart = 0u64;
        let mut conflicts_since_poll = 0u64;
        // The Luby index is per call: an incremental session issues thousands
        // of queries, and seeding from the global restart counter would start
        // a fresh query deep in the sequence with a near-unbounded threshold.
        let mut call_restarts = 0u64;
        let mut restart_threshold = 100u64 * luby(call_restarts);

        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                conflicts_since_poll += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                // Conflicts at or below the assumption prefix learn too:
                // analysis resolves only real reason clauses, so the learnt
                // clause is sound without the assumptions (whose negations
                // may appear in it as ordinary literals). Unsatisfiability
                // under the assumptions surfaces below, when re-assertion
                // finds an assumption forced false.
                let (learnt, backtrack_level, lbd) = self.analyze(conflict);
                // The backjump may land inside (or below) the assumption
                // prefix; that is sound here because the decision loop below
                // re-asserts assumptions in order before any free decision,
                // running final analysis if a learnt clause now falsifies
                // one.
                self.backtrack(backtrack_level);
                self.record_learnt(learnt, lbd);
                self.note_lbd(lbd);
                self.decay_activities();
            } else {
                // Interruption checks happen only at propagation fixpoints:
                // unwinding here leaves no half-propagated trail behind, so
                // the preserved search state stays sound.
                if self.budget_exhausted(conflicts_at_entry, propagations_at_entry) {
                    self.backtrack(0);
                    return SatResult::Interrupted;
                }
                if !self.learnts.is_empty() && self.learnts.len() as f64 >= self.max_learnts {
                    self.reduce_db();
                    if self.learnt_limit_override.is_none() {
                        self.max_learnts *= LEARNT_LIMIT_GROWTH;
                    }
                }
                let restart_due = match self.restart_mode {
                    RestartMode::Luby => conflicts_since_restart >= restart_threshold,
                    RestartMode::DynamicLbd => self.dynamic_restart_due(),
                };
                if restart_due {
                    self.stats.restarts += 1;
                    call_restarts += 1;
                    conflicts_since_restart = 0;
                    conflicts_since_poll = 0;
                    restart_threshold = 100 * luby(call_restarts);
                    self.clear_lbd_window();
                    if self.stop_requested() {
                        self.backtrack(0);
                        return SatResult::Interrupted;
                    }
                    self.backtrack(assumptions.len() as u32);
                } else if conflicts_since_poll >= STOP_POLL_CONFLICTS {
                    // Dynamic restarts can go quiet for long stretches; a
                    // deadline must still be honored at a bounded interval.
                    conflicts_since_poll = 0;
                    if self.stop_requested() {
                        self.backtrack(0);
                        return SatResult::Interrupted;
                    }
                }
                // Assumption decisions first.
                let next_assumption = self.decision_level() as usize;
                if next_assumption < assumptions.len() {
                    let a = assumptions[next_assumption];
                    match self.lit_value(a) {
                        LBOOL_TRUE => {
                            // Already implied: create an empty decision level
                            // so that level bookkeeping still lines up.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBOOL_FALSE => {
                            // The formula implies ¬a: final analysis exposes
                            // the assumption subset that refutation used,
                            // and the learnt clauses stay for later queries.
                            self.analyze_final(a);
                            self.backtrack(0);
                            return SatResult::Unsat;
                        }
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.stats.decisions += 1;
                            self.enqueue(a, Reason::None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        let model = Model {
                            values: self.assign.iter().map(|&a| a == LBOOL_TRUE).collect(),
                        };
                        self.backtrack(0);
                        return SatResult::Sat(model);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(v, self.phase[v.index()]);
                        self.enqueue(lit, Reason::None);
                    }
                }
            }
        }
    }
}

impl ClauseSink for Solver {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        Solver::add_clause(self, lits)
    }

    fn num_vars(&self) -> usize {
        Solver::num_vars(self)
    }

    fn num_clauses(&self) -> usize {
        Solver::num_clauses(self)
    }
}

impl SatEngine for Solver {
    fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        Solver::solve_with_assumptions(self, assumptions)
    }

    fn export_state(&self, options: &StateExportOptions) -> Option<SolverState> {
        Some(Solver::export_state(self, options))
    }

    fn import_state(&mut self, state: &SolverState) -> Result<(), String> {
        Solver::import_state(self, state)
    }

    fn set_control(&mut self, control: SolveControl) {
        Solver::set_control(self, control)
    }

    fn stats(&self) -> SolverStats {
        Solver::stats(self)
    }

    fn is_consistent(&self) -> bool {
        Solver::is_consistent(self)
    }

    fn failed_assumptions(&self) -> &[Lit] {
        Solver::failed_assumptions(self)
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …).
pub(crate) fn luby(i: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u64;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut i = i;
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(solver_vars: &[Var], i: i64) -> Lit {
        let v = solver_vars[(i.unsigned_abs() - 1) as usize];
        Lit::new(v, i > 0)
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[Lit::positive(a)]));
        assert!(s.solve().is_sat());
        assert!(!s.add_clause(&[Lit::negative(a)]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        // a -> b -> c -> d, a asserted.
        s.add_clause(&[lit(&vars, -1), lit(&vars, 2)]);
        s.add_clause(&[lit(&vars, -2), lit(&vars, 3)]);
        s.add_clause(&[lit(&vars, -3), lit(&vars, 4)]);
        s.add_clause(&[lit(&vars, 1)]);
        match s.solve() {
            SatResult::Sat(m) => {
                for v in &vars {
                    assert!(m.value(*v));
                }
            }
            SatResult::Unsat => panic!("chain is satisfiable"),
            SatResult::Interrupted => panic!("no SolveControl installed"),
        }
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole_is_unsat() {
        // p1h1, p2h1 with at-most-one constraint.
        let mut s = Solver::new();
        let p1 = s.new_var();
        let p2 = s.new_var();
        s.add_clause(&[Lit::positive(p1)]);
        s.add_clause(&[Lit::positive(p2)]);
        s.add_clause(&[Lit::negative(p1), Lit::negative(p2)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // p1/p2/h index the pigeon matrix pairwise
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // Variables x[p][h]: pigeon p in hole h.
        let mut s = Solver::new();
        let x: Vec<Vec<Var>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var()).collect())
            .collect();
        for holes in &x {
            s.add_clause(&[Lit::positive(holes[0]), Lit::positive(holes[1])]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    s.add_clause(&[Lit::negative(x[p1][h]), Lit::negative(x[p2][h])]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    /// Pigeonhole over ternary at-least-one clauses so the arena (not just
    /// the binary lists) carries the search, with a tiny learnt limit so
    /// reduce-DB and the garbage collector churn constantly mid-search.
    #[test]
    #[allow(clippy::needless_range_loop)] // p1/p2/h index the pigeon matrix pairwise
    fn pigeonhole_survives_aggressive_reduce_and_gc() {
        let pigeons = 6;
        let holes = 5;
        let mut s = Solver::new();
        s.set_learnt_limit(Some(4));
        let x: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &x {
            let clause: Vec<Lit> = row.iter().map(|&v| Lit::positive(v)).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause(&[Lit::negative(x[p1][h]), Lit::negative(x[p2][h])]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        let stats = s.stats();
        assert!(stats.reduces > 0, "reduce-DB must have run: {stats:?}");
        assert!(
            stats.deleted > 0,
            "clauses must have been deleted: {stats:?}"
        );
    }

    #[test]
    fn xor_chain_has_expected_parity() {
        // Encode a ^ b = 1, b ^ c = 1, a ^ c = 0 (consistent).
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let xor1 = |s: &mut Solver, x: Var, y: Var| {
            // x ^ y = 1  <=>  (x | y) & (!x | !y)
            s.add_clause(&[Lit::positive(x), Lit::positive(y)]);
            s.add_clause(&[Lit::negative(x), Lit::negative(y)]);
        };
        let xnor = |s: &mut Solver, x: Var, y: Var| {
            s.add_clause(&[Lit::positive(x), Lit::negative(y)]);
            s.add_clause(&[Lit::negative(x), Lit::positive(y)]);
        };
        xor1(&mut s, a, b);
        xor1(&mut s, b, c);
        xnor(&mut s, a, c);
        match s.solve() {
            SatResult::Sat(m) => {
                assert_ne!(m.value(a), m.value(b));
                assert_ne!(m.value(b), m.value(c));
                assert_eq!(m.value(a), m.value(c));
            }
            SatResult::Unsat => panic!("consistent xor system"),
            SatResult::Interrupted => panic!("no SolveControl installed"),
        }
    }

    #[test]
    fn assumptions_do_not_poison_the_solver() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::positive(a), Lit::positive(b)]);
        // Under the assumptions ¬a ∧ ¬b the formula is unsatisfiable…
        assert_eq!(
            s.solve_with_assumptions(&[Lit::negative(a), Lit::negative(b)]),
            SatResult::Unsat
        );
        // …but without them it still is satisfiable.
        assert!(s.solve().is_sat());
        // And an assumption consistent with the clauses is honored.
        match s.solve_with_assumptions(&[Lit::negative(a)]) {
            SatResult::Sat(m) => {
                assert!(!m.value(a));
                assert!(m.value(b));
            }
            SatResult::Unsat => panic!("satisfiable under ¬a"),
            SatResult::Interrupted => panic!("no SolveControl installed"),
        }
    }

    #[test]
    fn incremental_clause_addition_between_solves() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        s.add_clause(&[lit(&vars, 1), lit(&vars, 2), lit(&vars, 3)]);
        assert!(s.solve().is_sat());
        s.add_clause(&[lit(&vars, -1)]);
        s.add_clause(&[lit(&vars, -2)]);
        match s.solve() {
            SatResult::Sat(m) => assert!(m.value(vars[2])),
            SatResult::Unsat => panic!("still satisfiable"),
            SatResult::Interrupted => panic!("no SolveControl installed"),
        }
        s.add_clause(&[lit(&vars, -3)]);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(!s.is_consistent());
    }

    #[test]
    fn tautological_and_duplicate_literals_are_handled() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause(&[Lit::positive(a), Lit::negative(a)]));
        assert!(s.add_clause(&[Lit::positive(b), Lit::positive(b)]));
        match s.solve() {
            SatResult::Sat(m) => assert!(m.value(b)),
            SatResult::Unsat => panic!("satisfiable"),
            SatResult::Interrupted => panic!("no SolveControl installed"),
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn stats_are_populated() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..6).map(|_| s.new_var()).collect();
        for i in 0..5 {
            s.add_clause(&[Lit::positive(vars[i]), Lit::negative(vars[(i + 1) % 6])]);
        }
        s.solve();
        assert!(s.stats().decisions > 0);
        assert!(s.stats().propagations > 0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // p1/p2/h index the pigeon matrix pairwise
    fn learned_counts_live_clauses() {
        // Force an UNSAT search with deletions and check the live/deleted
        // bookkeeping stays consistent: live learnt = recorded - deleted.
        let mut s = Solver::new();
        s.set_learnt_limit(Some(2));
        let n = 7;
        let x: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var()).collect())
            .collect();
        for row in &x {
            let clause: Vec<Lit> = row.iter().map(|&v| Lit::positive(v)).collect();
            s.add_clause(&clause);
        }
        for h in 0..n - 1 {
            for p1 in 0..n {
                for p2 in (p1 + 1)..n {
                    s.add_clause(&[Lit::negative(x[p1][h]), Lit::negative(x[p2][h])]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        let stats = s.stats();
        assert!(stats.deleted > 0);
        // The live count never exceeds what was ever recorded.
        assert!(stats.learned <= stats.conflicts);
    }

    #[test]
    fn clearing_the_learnt_limit_restores_the_adaptive_schedule() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::positive(a), Lit::positive(b)]);
        s.set_learnt_limit(Some(1_000_000_000));
        assert!(s.solve().is_sat());
        assert_eq!(s.max_learnts, 1e9);
        s.set_learnt_limit(None);
        assert!(s.solve().is_sat());
        assert!(
            s.max_learnts <= LEARNT_LIMIT_FLOOR,
            "stale override survived: {}",
            s.max_learnts
        );
    }

    /// A pigeonhole instance over fresh variables whose clauses are all
    /// gated on a selector literal: assuming the selector activates it.
    #[allow(clippy::needless_range_loop)] // `h` indexes the inner dimension
    fn gated_pigeonhole(s: &mut Solver, pigeons: usize) -> Lit {
        let holes = pigeons - 1;
        let gate = Lit::positive(s.new_var());
        let x: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &x {
            let mut clause: Vec<Lit> = row.iter().map(|&v| Lit::positive(v)).collect();
            clause.push(!gate);
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause(&[Lit::negative(x[p1][h]), Lit::negative(x[p2][h]), !gate]);
                }
            }
        }
        gate
    }

    #[test]
    fn unsat_under_assumptions_learns_for_the_requery() {
        // Regression for the assumption-level learn-nothing bailout: an
        // Unsat-under-assumptions call must leave the solver usable AND its
        // learnt clauses must make an immediately repeated identical query
        // strictly cheaper.
        let mut s = Solver::new();
        let gate = gated_pigeonhole(&mut s, 5);
        assert_eq!(s.solve_with_assumptions(&[gate]), SatResult::Unsat);
        let first = s.stats().conflicts;
        assert!(first > 0, "the instance must require search");
        assert_eq!(s.solve_with_assumptions(&[gate]), SatResult::Unsat);
        let second = s.stats().conflicts - first;
        assert!(
            second < first,
            "re-query must reuse learnt clauses: {second} conflicts vs {first}"
        );
        // The solver itself is not poisoned: without the gate it is SAT.
        assert!(s.solve().is_sat());
        assert!(s.is_consistent());
    }

    #[test]
    fn failed_assumptions_name_the_refuting_subset() {
        let mut s = Solver::new();
        let a = Lit::positive(s.new_var());
        let b = Lit::positive(s.new_var());
        let c = Lit::positive(s.new_var());
        s.add_clause(&[!a, !b]);
        assert_eq!(s.solve_with_assumptions(&[a, b, c]), SatResult::Unsat);
        let core = s.failed_assumptions();
        assert!(core.contains(&a) || core.contains(&b), "core: {core:?}");
        assert!(!core.contains(&c), "c is irrelevant: {core:?}");
        assert!(core.iter().all(|l| [a, b].contains(l)), "core: {core:?}");
        // A satisfiable query clears the core.
        assert!(s.solve_with_assumptions(&[a, c]).is_sat());
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn root_level_unsat_has_an_empty_core() {
        let mut s = Solver::new();
        let a = Lit::positive(s.new_var());
        let b = Lit::positive(s.new_var());
        s.add_clause(&[b]);
        s.add_clause(&[!b]);
        assert_eq!(s.solve_with_assumptions(&[a]), SatResult::Unsat);
        assert!(
            s.failed_assumptions().is_empty(),
            "the database is unsatisfiable regardless of the assumptions"
        );
    }

    #[test]
    fn restart_modes_agree_on_verdicts() {
        for mode in [RestartMode::Luby, RestartMode::DynamicLbd] {
            let mut s = Solver::new();
            s.set_restart_mode(mode);
            assert_eq!(s.restart_mode(), mode);
            let gate = gated_pigeonhole(&mut s, 6);
            assert_eq!(s.solve_with_assumptions(&[gate]), SatResult::Unsat);
            assert!(s.solve().is_sat());
        }
    }

    #[test]
    fn dynamic_restarts_fire_on_hard_instances() {
        let mut s = Solver::new();
        assert_eq!(s.restart_mode(), RestartMode::DynamicLbd, "default mode");
        let gate = gated_pigeonhole(&mut s, 7);
        assert_eq!(s.solve_with_assumptions(&[gate]), SatResult::Unsat);
        assert!(
            s.stats().restarts > 0,
            "LBD spikes on pigeonhole must trigger dynamic restarts: {:?}",
            s.stats()
        );
    }

    #[test]
    fn luby_restart_schedule_is_per_call() {
        // Regression for seeding the Luby index from the global restart
        // counter: rotating through fresh (disjoint) hard instances, every
        // call must start its schedule at 100 conflicts and restart, instead
        // of inheriting an escalated threshold from earlier calls.
        let mut s = Solver::new();
        s.set_restart_mode(RestartMode::Luby);
        for round in 0..6 {
            let gate = gated_pigeonhole(&mut s, 7);
            let restarts_before = s.stats().restarts;
            let conflicts_before = s.stats().conflicts;
            assert_eq!(s.solve_with_assumptions(&[gate]), SatResult::Unsat);
            let conflicts = s.stats().conflicts - conflicts_before;
            assert!(
                conflicts > 150,
                "round {round}: instance too easy ({conflicts} conflicts) to observe restarts"
            );
            assert!(
                s.stats().restarts > restarts_before,
                "round {round}: no restart despite {conflicts} conflicts"
            );
        }
    }

    #[test]
    fn model_lit_value_matches_polarity() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::negative(a)]);
        let model = match s.solve() {
            SatResult::Sat(m) => m,
            SatResult::Unsat => panic!("satisfiable"),
            SatResult::Interrupted => panic!("no SolveControl installed"),
        };
        assert!(!model.value(a));
        assert!(model.lit_value(Lit::negative(a)));
        assert!(!model.lit_value(Lit::positive(a)));
        assert_eq!(model.len(), 1);
        assert!(!model.is_empty());
    }

    /// Pigeonhole instance PHP(p, p-1): hard enough to learn clauses, small
    /// enough for tests. Returns the solver with the problem loaded.
    #[allow(clippy::needless_range_loop)] // `h` indexes the inner dimension
    fn pigeonhole(pigeons: usize) -> Solver {
        let holes = pigeons - 1;
        let mut s = Solver::new();
        let x: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &x {
            let clause: Vec<Lit> = row.iter().map(|&v| Lit::positive(v)).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause(&[Lit::negative(x[p1][h]), Lit::negative(x[p2][h])]);
                }
            }
        }
        s
    }

    #[test]
    fn export_import_round_trips_the_learnt_database() {
        let mut warm = pigeonhole(8);
        warm.set_control(SolveControl::with_conflict_budget(300));
        assert_eq!(warm.solve(), SatResult::Interrupted);
        let state = warm.export_state(&StateExportOptions::default());
        assert!(state.clause_count() > 0, "budget run learnt nothing");
        assert_eq!(state.num_vars as usize, warm.num_vars());
        assert!(state.clauses.iter().all(|c| c.lits.len() >= 2));

        let mut resumed = pigeonhole(8);
        resumed.import_state(&state).expect("snapshot applies");
        // Ranking may reorder but nothing may be lost or invented.
        let exported_again = resumed.export_state(&StateExportOptions::default());
        assert_eq!(exported_again.clause_count(), state.clause_count());
        assert_eq!(exported_again.literal_count(), state.literal_count());
        assert_eq!(exported_again.activity, state.activity);
        assert_eq!(exported_again.phase, state.phase);
        assert_eq!(exported_again.var_inc, state.var_inc);

        // Both finish with the right verdict regardless of the import.
        resumed.set_control(SolveControl::unlimited());
        warm.set_control(SolveControl::unlimited());
        assert_eq!(resumed.solve(), SatResult::Unsat);
        assert_eq!(warm.solve(), SatResult::Unsat);
    }

    #[test]
    fn export_honors_glue_and_literal_caps() {
        let mut s = pigeonhole(8);
        s.set_control(SolveControl::with_conflict_budget(500));
        assert_eq!(s.solve(), SatResult::Interrupted);
        let full = s.export_state(&StateExportOptions::default());
        assert!(full.clause_count() > 0);

        let glue_capped = s.export_state(&StateExportOptions {
            glue_cap: Some(3),
            literal_cap: None,
        });
        assert!(glue_capped.clauses.iter().all(|c| c.lbd <= 3));
        assert!(glue_capped.clause_count() <= full.clause_count());

        let cap = full.literal_count() / 2;
        let lit_capped = s.export_state(&StateExportOptions {
            glue_cap: None,
            literal_cap: Some(cap),
        });
        assert!(lit_capped.literal_count() <= cap);
        assert!(lit_capped.clause_count() < full.clause_count());
        // The cap keeps the best-ranked prefix: every kept arena clause must
        // have glue no worse than any dropped one's minimum... cheaper check:
        // capped set is a subset of the full export's clause multiset.
        for c in &lit_capped.clauses {
            assert!(full.clauses.contains(c), "cap invented a clause");
        }
    }

    #[test]
    fn import_rejects_incompatible_snapshots_without_side_effects() {
        let mut donor = pigeonhole(7);
        donor.set_control(SolveControl::with_conflict_budget(200));
        let _ = donor.solve();
        let state = donor.export_state(&StateExportOptions::default());

        // Wrong variable count.
        let mut other = pigeonhole(6);
        let before = other.clone();
        assert!(other.import_state(&state).is_err());
        assert_eq!(other.num_clauses(), before.num_clauses());

        // Out-of-range literal inside a shape-corrupted snapshot.
        let mut forged = state.clone();
        if let Some(c) = forged.clauses.first_mut() {
            c.lits.truncate(1);
        }
        let mut target = pigeonhole(7);
        assert!(target.import_state(&forged).is_err());
        assert_eq!(target.num_clauses(), pigeonhole(7).num_clauses());
        // A rejected import leaves the solver fully usable.
        target.set_control(SolveControl::unlimited());
        assert_eq!(target.solve(), SatResult::Unsat);
    }

    #[test]
    fn imported_state_survives_reduce_db_and_solves_consistently() {
        let mut donor = pigeonhole(8);
        donor.set_control(SolveControl::with_conflict_budget(400));
        assert_eq!(donor.solve(), SatResult::Interrupted);
        let state = donor.export_state(&StateExportOptions::default());

        let mut s = pigeonhole(8);
        s.import_state(&state).expect("snapshot applies");
        // Force clause deletion over the imported database; the solve must
        // still reach the right verdict.
        s.set_learnt_limit(Some(16));
        s.set_control(SolveControl::unlimited());
        assert_eq!(s.solve(), SatResult::Unsat);
    }
}
