//! Tseitin encoding of combinational netlists into CNF.
//!
//! Each net of a combinational [`Netlist`] is mapped to a solver literal; each
//! gate contributes the standard Tseitin clauses constraining its output
//! literal to equal its Boolean function. Nets can be *pre-bound* to existing
//! literals before encoding, which is how the attack builds two copies of the
//! locked circuit sharing the same input variables (the miter of COMB-SAT).

use std::error::Error;
use std::fmt;

use netlist::{Driver, GateKind, NetId, Netlist, NetlistError};

use crate::solver::Solver;
use crate::types::Lit;

/// Error produced during circuit encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The netlist contains flip-flops; unroll it first.
    Sequential {
        /// Number of flip-flops found.
        dffs: usize,
    },
    /// The netlist failed validation.
    Netlist(NetlistError),
    /// A net is used but neither driven nor pre-bound.
    Unbound(String),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Sequential { dffs } => {
                write!(f, "netlist has {dffs} flip-flops; unroll before encoding")
            }
            EncodeError::Netlist(e) => write!(f, "invalid netlist: {e}"),
            EncodeError::Unbound(name) => write!(f, "net `{name}` has no driver and no binding"),
        }
    }
}

impl Error for EncodeError {}

impl From<NetlistError> for EncodeError {
    fn from(e: NetlistError) -> Self {
        EncodeError::Netlist(e)
    }
}

/// Encoder mapping the nets of one combinational netlist onto literals of a
/// [`Solver`].
#[derive(Debug)]
pub struct CircuitEncoder<'a> {
    netlist: &'a Netlist,
    map: Vec<Option<Lit>>,
}

impl<'a> CircuitEncoder<'a> {
    /// Creates an encoder for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::Sequential`] if the netlist contains flip-flops
    /// and [`EncodeError::Netlist`] if it fails validation.
    pub fn new(netlist: &'a Netlist) -> Result<Self, EncodeError> {
        if netlist.num_dffs() > 0 {
            return Err(EncodeError::Sequential {
                dffs: netlist.num_dffs(),
            });
        }
        netlist.validate()?;
        Ok(CircuitEncoder {
            netlist,
            map: vec![None; netlist.num_nets()],
        })
    }

    /// Pre-binds a net to an existing solver literal. Must be called before
    /// [`CircuitEncoder::encode`]; typically used on primary inputs shared
    /// between circuit copies.
    pub fn bind(&mut self, net: NetId, lit: Lit) {
        self.map[net.index()] = Some(lit);
    }

    /// Literal assigned to a net (after encoding, every net has one).
    pub fn lit(&self, net: NetId) -> Option<Lit> {
        self.map[net.index()]
    }

    /// Literals of the primary outputs, in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if called before [`CircuitEncoder::encode`].
    pub fn output_lits(&self) -> Vec<Lit> {
        self.netlist
            .outputs()
            .iter()
            .map(|&o| self.lit(o).expect("encode before querying outputs"))
            .collect()
    }

    /// Literals of the primary inputs, in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if called before [`CircuitEncoder::encode`].
    pub fn input_lits(&self) -> Vec<Lit> {
        self.netlist
            .inputs()
            .iter()
            .map(|&i| self.lit(i).expect("encode before querying inputs"))
            .collect()
    }

    /// Encodes the whole netlist into `solver`, allocating variables for every
    /// net that is not pre-bound.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::Unbound`] if a used net has no driver and was
    /// not pre-bound.
    pub fn encode(&mut self, solver: &mut Solver) -> Result<(), EncodeError> {
        // Primary inputs: fresh variables unless bound.
        for &input in self.netlist.inputs() {
            if self.map[input.index()].is_none() {
                self.map[input.index()] = Some(Lit::positive(solver.new_var()));
            }
        }
        // Declared-but-undriven nets must have been bound by the caller.
        for net in self.netlist.net_ids() {
            if self.netlist.driver(net) == Driver::None && self.map[net.index()].is_none() {
                return Err(EncodeError::Unbound(self.netlist.net_name(net).to_string()));
            }
        }
        let order = netlist::topo::gate_order(self.netlist)?;
        for gid in order {
            let gate = self.netlist.gate(gid);
            let inputs: Vec<Lit> = gate
                .inputs
                .iter()
                .map(|&n| {
                    self.map[n.index()]
                        .ok_or_else(|| EncodeError::Unbound(self.netlist.net_name(n).to_string()))
                })
                .collect::<Result<_, _>>()?;
            let out = match self.map[gate.output.index()] {
                Some(lit) => lit,
                None => {
                    let lit = Lit::positive(solver.new_var());
                    self.map[gate.output.index()] = Some(lit);
                    lit
                }
            };
            encode_gate(solver, gate.kind, out, &inputs);
        }
        Ok(())
    }
}

/// Adds the Tseitin clauses for `out = kind(inputs)` to the solver.
///
/// # Panics
///
/// Panics if the input count violates the gate arity.
pub fn encode_gate(solver: &mut Solver, kind: GateKind, out: Lit, inputs: &[Lit]) {
    assert!(
        kind.arity_ok(inputs.len()),
        "gate {kind} encoded with {} inputs",
        inputs.len()
    );
    match kind {
        GateKind::Const0 => {
            solver.add_clause(&[!out]);
        }
        GateKind::Const1 => {
            solver.add_clause(&[out]);
        }
        GateKind::Buf => encode_equal(solver, out, inputs[0]),
        GateKind::Not => encode_equal(solver, out, !inputs[0]),
        GateKind::And => encode_and(solver, out, inputs),
        GateKind::Nand => encode_and(solver, !out, inputs),
        GateKind::Or => encode_or(solver, out, inputs),
        GateKind::Nor => encode_or(solver, !out, inputs),
        GateKind::Xor => encode_parity(solver, out, inputs),
        GateKind::Xnor => encode_parity(solver, !out, inputs),
        GateKind::Mux => {
            let (s, a, b) = (inputs[0], inputs[1], inputs[2]);
            // out = s ? b : a
            solver.add_clause(&[!s, !b, out]);
            solver.add_clause(&[!s, b, !out]);
            solver.add_clause(&[s, !a, out]);
            solver.add_clause(&[s, a, !out]);
            // Redundant but propagation-friendly clauses.
            solver.add_clause(&[!a, !b, out]);
            solver.add_clause(&[a, b, !out]);
        }
    }
}

/// Constrains `a = b`.
pub fn encode_equal(solver: &mut Solver, a: Lit, b: Lit) {
    solver.add_clause(&[!a, b]);
    solver.add_clause(&[a, !b]);
}

fn encode_and(solver: &mut Solver, out: Lit, inputs: &[Lit]) {
    let mut long_clause = Vec::with_capacity(inputs.len() + 1);
    for &i in inputs {
        solver.add_clause(&[!out, i]);
        long_clause.push(!i);
    }
    long_clause.push(out);
    solver.add_clause(&long_clause);
}

fn encode_or(solver: &mut Solver, out: Lit, inputs: &[Lit]) {
    let mut long_clause = Vec::with_capacity(inputs.len() + 1);
    for &i in inputs {
        solver.add_clause(&[out, !i]);
        long_clause.push(i);
    }
    long_clause.push(!out);
    solver.add_clause(&long_clause);
}

/// Constrains `out = a ^ b` for exactly two operands.
fn encode_xor2(solver: &mut Solver, out: Lit, a: Lit, b: Lit) {
    solver.add_clause(&[!out, a, b]);
    solver.add_clause(&[!out, !a, !b]);
    solver.add_clause(&[out, !a, b]);
    solver.add_clause(&[out, a, !b]);
}

/// Constrains `out` to the parity (XOR) of an arbitrary number of operands by
/// chaining 2-input XORs through auxiliary variables.
fn encode_parity(solver: &mut Solver, out: Lit, inputs: &[Lit]) {
    match inputs.len() {
        0 => {
            solver.add_clause(&[!out]);
        }
        1 => encode_equal(solver, out, inputs[0]),
        2 => encode_xor2(solver, out, inputs[0], inputs[1]),
        _ => {
            let mut acc = inputs[0];
            for (i, &next) in inputs[1..].iter().enumerate() {
                let target = if i == inputs.len() - 2 {
                    out
                } else {
                    Lit::positive(solver.new_var())
                };
                encode_xor2(solver, target, acc, next);
                acc = target;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SatResult, Var};
    use netlist::Netlist;

    /// Checks that the CNF encoding of a single-output combinational circuit
    /// agrees with direct gate evaluation on every input assignment.
    fn assert_encoding_matches(netlist: &Netlist) {
        let n_inputs = netlist.num_inputs();
        assert!(n_inputs <= 10, "exhaustive check limited to 10 inputs");
        let order = netlist::topo::gate_order(netlist).unwrap();
        for pattern in 0..(1u64 << n_inputs) {
            // Direct evaluation.
            let mut values = vec![false; netlist.num_nets()];
            for (i, &input) in netlist.inputs().iter().enumerate() {
                values[input.index()] = (pattern >> i) & 1 == 1;
            }
            for &gid in &order {
                let g = netlist.gate(gid);
                let ins: Vec<bool> = g.inputs.iter().map(|&n| values[n.index()]).collect();
                values[g.output.index()] = g.kind.eval(&ins);
            }
            // CNF evaluation: constrain inputs, solve, compare outputs.
            let mut solver = Solver::new();
            let mut encoder = CircuitEncoder::new(netlist).unwrap();
            encoder.encode(&mut solver).unwrap();
            for (i, &input) in netlist.inputs().iter().enumerate() {
                let lit = encoder.lit(input).unwrap();
                let want = (pattern >> i) & 1 == 1;
                solver.add_clause(&[if want { lit } else { !lit }]);
            }
            match solver.solve() {
                SatResult::Sat(model) => {
                    for &out in netlist.outputs() {
                        let lit = encoder.lit(out).unwrap();
                        assert_eq!(
                            model.lit_value(lit),
                            values[out.index()],
                            "output {} pattern {pattern:b}",
                            netlist.net_name(out)
                        );
                    }
                }
                SatResult::Unsat => panic!("encoding must be satisfiable for pattern {pattern}"),
            }
        }
    }

    #[test]
    fn all_gate_kinds_encode_correctly() {
        let mut nl = Netlist::new("gates");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let kinds = [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let o2 = nl.add_gate(kind, &[a, b], format!("o2_{i}")).unwrap();
            nl.mark_output(o2).unwrap();
            let o3 = nl.add_gate(kind, &[a, b, c], format!("o3_{i}")).unwrap();
            nl.mark_output(o3).unwrap();
        }
        let on = nl.add_gate(GateKind::Not, &[a], "on").unwrap();
        nl.mark_output(on).unwrap();
        let ob = nl.add_gate(GateKind::Buf, &[b], "ob").unwrap();
        nl.mark_output(ob).unwrap();
        let om = nl.add_gate(GateKind::Mux, &[a, b, c], "om").unwrap();
        nl.mark_output(om).unwrap();
        let oc0 = nl.add_gate(GateKind::Const0, &[], "oc0").unwrap();
        nl.mark_output(oc0).unwrap();
        let oc1 = nl.add_gate(GateKind::Const1, &[], "oc1").unwrap();
        nl.mark_output(oc1).unwrap();
        assert_encoding_matches(&nl);
    }

    #[test]
    fn wide_parity_encodes_correctly() {
        let mut nl = Netlist::new("parity");
        let ins: Vec<_> = (0..6).map(|i| nl.add_input(format!("i{i}"))).collect();
        let x = nl.add_gate(GateKind::Xor, &ins, "x").unwrap();
        nl.mark_output(x).unwrap();
        let nx = nl.add_gate(GateKind::Xnor, &ins, "nx").unwrap();
        nl.mark_output(nx).unwrap();
        assert_encoding_matches(&nl);
    }

    #[test]
    fn sequential_netlists_are_rejected() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let q = nl.declare_dff("q", false).unwrap();
        nl.bind_dff(q, a).unwrap();
        nl.mark_output(q).unwrap();
        assert!(matches!(
            CircuitEncoder::new(&nl),
            Err(EncodeError::Sequential { dffs: 1 })
        ));
    }

    #[test]
    fn binding_inputs_shares_variables_between_copies() {
        // Encode the same circuit twice with shared inputs and check that the
        // outputs are forced equal (the miter of identical circuits is UNSAT
        // when asked for a difference).
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let o = nl.add_gate(GateKind::And, &[a, b], "o").unwrap();
        nl.mark_output(o).unwrap();

        let mut solver = Solver::new();
        let shared: Vec<Lit> = (0..2).map(|_| Lit::positive(solver.new_var())).collect();

        let mut enc1 = CircuitEncoder::new(&nl).unwrap();
        let mut enc2 = CircuitEncoder::new(&nl).unwrap();
        for (i, &input) in nl.inputs().iter().enumerate() {
            enc1.bind(input, shared[i]);
            enc2.bind(input, shared[i]);
        }
        enc1.encode(&mut solver).unwrap();
        enc2.encode(&mut solver).unwrap();
        let o1 = enc1.lit(o).unwrap();
        let o2 = enc2.lit(o).unwrap();
        // Ask for a difference: o1 != o2 must be UNSAT.
        let diff = Lit::positive(solver.new_var());
        encode_xor2(&mut solver, diff, o1, o2);
        solver.add_clause(&[diff]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn unbound_undriven_net_is_reported() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let x = nl.declare_net("x").unwrap();
        let o = nl.add_gate(GateKind::And, &[a, x], "o").unwrap();
        nl.mark_output(o).unwrap();
        // Without binding `x` the netlist does not even validate, so bind it
        // to exercise the encoder path, then drop the binding to see the error.
        let mut solver = Solver::new();
        let mut enc = CircuitEncoder {
            netlist: &nl,
            map: vec![None; nl.num_nets()],
        };
        let err = enc.encode(&mut solver).unwrap_err();
        assert!(matches!(err, EncodeError::Unbound(_)));
        // Now bind and encode successfully.
        let mut solver = Solver::new();
        let free = Lit::positive(solver.new_var());
        let mut enc = CircuitEncoder {
            netlist: &nl,
            map: vec![None; nl.num_nets()],
        };
        enc.bind(x, free);
        enc.encode(&mut solver).unwrap();
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn output_and_input_lits_are_exposed() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let o = nl.add_gate(GateKind::Not, &[a], "o").unwrap();
        nl.mark_output(o).unwrap();
        let mut solver = Solver::new();
        let mut enc = CircuitEncoder::new(&nl).unwrap();
        enc.encode(&mut solver).unwrap();
        assert_eq!(enc.input_lits().len(), 1);
        assert_eq!(enc.output_lits().len(), 1);
        assert_ne!(enc.input_lits()[0], enc.output_lits()[0]);
        let _ = Var::from_index(0);
    }
}
