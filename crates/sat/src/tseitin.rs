//! Tseitin encoding of combinational netlists into CNF, with constant
//! folding and cone-of-influence restriction.
//!
//! Each net of a combinational [`Netlist`] is mapped to a [`Bound`]: either a
//! solver literal or, when the net's value is forced, a Boolean constant.
//! Each gate contributes the standard Tseitin clauses constraining its output
//! to equal its Boolean function — unless folding simplifies it away first.
//!
//! Nets can be *pre-bound* before encoding:
//!
//! * [`CircuitEncoder::bind`] ties a net to an existing literal, which is how
//!   the attack builds two copies of the locked circuit sharing the same
//!   input variables (the miter of COMB-SAT);
//! * [`CircuitEncoder::bind_const`] pins a net to a constant. Constants are
//!   folded through the gate level — an AND with a false input disappears, a
//!   MUX with a known select becomes a wire, XOR constants flip polarities —
//!   so a circuit copy whose inputs are fixed to an observed DIP shrinks to
//!   the small key-dependent residue instead of a full copy with variables
//!   pinned by unit clauses.
//!
//! [`CircuitEncoder::encode_cone`] additionally restricts the encoding to the
//! fan-in cones of chosen root nets, skipping logic that no observed output
//! depends on. The combination keeps each oracle observation the DIP loop
//! adds near-minimal.

use std::error::Error;
use std::fmt;

use netlist::{Driver, GateKind, NetId, Netlist, NetlistError};

use crate::engine::ClauseSink;
use crate::types::Lit;

/// Error produced during circuit encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The netlist contains flip-flops; unroll it first.
    Sequential {
        /// Number of flip-flops found.
        dffs: usize,
    },
    /// The netlist failed validation.
    Netlist(NetlistError),
    /// A net is used but neither driven nor pre-bound.
    Unbound(String),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Sequential { dffs } => {
                write!(f, "netlist has {dffs} flip-flops; unroll before encoding")
            }
            EncodeError::Netlist(e) => write!(f, "invalid netlist: {e}"),
            EncodeError::Unbound(name) => write!(f, "net `{name}` has no driver and no binding"),
        }
    }
}

impl Error for EncodeError {}

impl From<NetlistError> for EncodeError {
    fn from(e: NetlistError) -> Self {
        EncodeError::Netlist(e)
    }
}

/// Value of a net in an encoded circuit: a solver literal, or a constant when
/// folding proved the net independent of every variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// The net equals this solver literal.
    Lit(Lit),
    /// The net is constant.
    Const(bool),
}

impl Bound {
    /// The literal, if the net did not fold to a constant.
    pub fn as_lit(self) -> Option<Lit> {
        match self {
            Bound::Lit(l) => Some(l),
            Bound::Const(_) => None,
        }
    }

    /// The constant, if the net folded to one.
    pub fn as_const(self) -> Option<bool> {
        match self {
            Bound::Lit(_) => None,
            Bound::Const(v) => Some(v),
        }
    }

    /// The complement binding.
    fn negate(self) -> Bound {
        match self {
            Bound::Lit(l) => Bound::Lit(!l),
            Bound::Const(v) => Bound::Const(!v),
        }
    }
}

/// Result of folding one gate over its input bounds. Literal lists borrow a
/// caller-provided scratch buffer so the encode loop allocates nothing per
/// gate.
enum Folded<'s> {
    /// The output is a constant.
    Const(bool),
    /// The output equals an existing literal (no clauses needed).
    Alias(Lit),
    /// `out ⊕ invert = AND(lits)`.
    And(&'s [Lit], bool),
    /// `out ⊕ invert = OR(lits)`.
    Or(&'s [Lit], bool),
    /// `out ⊕ invert = XOR(lits)`.
    Xor(&'s [Lit], bool),
    /// An irreducible multiplexer `out = s ? b : a`.
    Mux(Lit, Lit, Lit),
    /// Folding disabled: encode `kind` over the literal inputs verbatim.
    Raw(GateKind, &'s [Lit]),
}

/// A net→binding map detached from its encoder, so bindings can outlive the
/// netlist borrow.
///
/// The incremental attack keeps one solver alive across unroll depths: it
/// encodes the miter for depth *d*, captures the map with
/// [`CircuitEncoder::into_map`], re-unrolls to depth *d+1* (unrolling is
/// prefix-stable: the first *d* timeframes reproduce identical net and gate
/// ids), and resumes with [`CircuitEncoder::resume`] over the deeper netlist.
/// Only the gates appended by the new timeframes are then encoded
/// ([`CircuitEncoder::encode_extension`]); every net of the old prefix keeps
/// the solver variable it already had.
#[derive(Debug, Clone)]
pub struct EncoderMap {
    map: Vec<Option<Bound>>,
    folding: bool,
}

impl EncoderMap {
    /// Number of nets the captured map covers.
    pub fn num_nets(&self) -> usize {
        self.map.len()
    }
}

/// Encoder mapping the nets of one combinational netlist onto literals (or
/// folded constants) of a clause sink.
#[derive(Debug)]
pub struct CircuitEncoder<'a> {
    netlist: &'a Netlist,
    map: Vec<Option<Bound>>,
    folding: bool,
}

impl<'a> CircuitEncoder<'a> {
    /// Creates an encoder for `netlist` (constant folding enabled).
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::Sequential`] if the netlist contains flip-flops
    /// and [`EncodeError::Netlist`] if it fails validation.
    pub fn new(netlist: &'a Netlist) -> Result<Self, EncodeError> {
        if netlist.num_dffs() > 0 {
            return Err(EncodeError::Sequential {
                dffs: netlist.num_dffs(),
            });
        }
        netlist.validate()?;
        Ok(CircuitEncoder {
            netlist,
            map: vec![None; netlist.num_nets()],
            folding: true,
        })
    }

    /// Detaches the net→binding map from the netlist borrow, preserving every
    /// binding produced so far. See [`EncoderMap`] for the cross-depth
    /// protocol.
    pub fn into_map(self) -> EncoderMap {
        EncoderMap {
            map: self.map,
            folding: self.folding,
        }
    }

    /// Rebuilds an encoder over `netlist` from a map captured on a *prefix*
    /// of it: `netlist` must reproduce the net ids the map was built against
    /// (the unroller guarantees this when deepening), and may append new
    /// nets, which start unbound.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::Sequential`] / [`EncodeError::Netlist`] as
    /// [`CircuitEncoder::new`] does.
    ///
    /// # Panics
    ///
    /// Panics if the map covers more nets than `netlist` has — the map was
    /// captured from a different (or deeper) circuit.
    pub fn resume(netlist: &'a Netlist, saved: EncoderMap) -> Result<Self, EncodeError> {
        if netlist.num_dffs() > 0 {
            return Err(EncodeError::Sequential {
                dffs: netlist.num_dffs(),
            });
        }
        netlist.validate()?;
        assert!(
            saved.map.len() <= netlist.num_nets(),
            "encoder map covers {} nets but the netlist has only {}",
            saved.map.len(),
            netlist.num_nets()
        );
        let mut map = saved.map;
        map.resize(netlist.num_nets(), None);
        Ok(CircuitEncoder {
            netlist,
            map,
            folding: saved.folding,
        })
    }

    /// Encodes only the gates with dense index `>= first_new_gate` (plus
    /// fresh variables for any still-unbound primary inputs), extending an
    /// encoding resumed via [`CircuitEncoder::resume`] with the timeframes a
    /// deeper unrolling appended. `order` is the topological gate order of
    /// the *whole* netlist; gates of the already-encoded prefix are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::Unbound`] if a used net in the new gates has no
    /// driver and was not pre-bound.
    pub fn encode_extension<S: ClauseSink>(
        &mut self,
        solver: &mut S,
        order: &[netlist::GateId],
        first_new_gate: usize,
    ) -> Result<(), EncodeError> {
        self.encode_impl(solver, None, Some(order), first_new_gate)
    }

    /// Disables gate-level constant folding and alias propagation: every gate
    /// is encoded verbatim, exactly as the pre-arena pipeline did. Kept so
    /// the reference attack configuration (and differential tests) can
    /// reproduce the historical CNF shape. Must not be combined with
    /// [`CircuitEncoder::bind_const`].
    pub fn set_folding(&mut self, folding: bool) {
        self.folding = folding;
    }

    /// Pre-binds a net to an existing solver literal. Must be called before
    /// [`CircuitEncoder::encode`]; typically used on primary inputs shared
    /// between circuit copies.
    pub fn bind(&mut self, net: NetId, lit: Lit) {
        self.map[net.index()] = Some(Bound::Lit(lit));
    }

    /// Pre-binds a net to a constant; the constant is folded through every
    /// gate it reaches during encoding. Typically used to replay a
    /// distinguishing input pattern without spending variables on it.
    pub fn bind_const(&mut self, net: NetId, value: bool) {
        self.map[net.index()] = Some(Bound::Const(value));
    }

    /// Literal assigned to a net, if the net was encoded and did not fold to
    /// a constant. See [`CircuitEncoder::bound`] for the full binding.
    pub fn lit(&self, net: NetId) -> Option<Lit> {
        self.map[net.index()].and_then(Bound::as_lit)
    }

    /// Binding of a net (after encoding, every reachable net has one).
    pub fn bound(&self, net: NetId) -> Option<Bound> {
        self.map[net.index()]
    }

    /// Bindings of the primary outputs, in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if called before [`CircuitEncoder::encode`] (or for outputs
    /// outside the cone passed to [`CircuitEncoder::encode_cone`]).
    pub fn output_bounds(&self) -> Vec<Bound> {
        self.netlist
            .outputs()
            .iter()
            .map(|&o| self.bound(o).expect("encode before querying outputs"))
            .collect()
    }

    /// Literals of the primary outputs, in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if called before [`CircuitEncoder::encode`], or if an output
    /// folded to a constant (use [`CircuitEncoder::output_bounds`] then).
    pub fn output_lits(&self) -> Vec<Lit> {
        self.output_bounds()
            .iter()
            .map(|b| {
                b.as_lit()
                    .expect("output folded to a constant; use output_bounds")
            })
            .collect()
    }

    /// Literals of the primary inputs, in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if called before [`CircuitEncoder::encode`], or if an input was
    /// bound to a constant.
    pub fn input_lits(&self) -> Vec<Lit> {
        self.netlist
            .inputs()
            .iter()
            .map(|&i| {
                self.bound(i)
                    .expect("encode before querying inputs")
                    .as_lit()
                    .expect("input bound to a constant has no literal")
            })
            .collect()
    }

    /// Encodes the whole netlist into `solver`, allocating variables for
    /// every net that is not pre-bound and does not fold to a constant.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::Unbound`] if a used net has no driver and was
    /// not pre-bound.
    pub fn encode<S: ClauseSink>(&mut self, solver: &mut S) -> Result<(), EncodeError> {
        self.encode_impl(solver, None, None, 0)
    }

    /// [`CircuitEncoder::encode`] with a precomputed topological gate order
    /// (as returned by [`netlist::topo::gate_order`] for this netlist), for
    /// callers that encode the same netlist repeatedly.
    pub fn encode_ordered<S: ClauseSink>(
        &mut self,
        solver: &mut S,
        order: &[netlist::GateId],
    ) -> Result<(), EncodeError> {
        self.encode_impl(solver, None, Some(order), 0)
    }

    /// Encodes only the fan-in cones of `roots`: gates no root depends on
    /// contribute neither variables nor clauses, and unbound inputs outside
    /// the cones stay unallocated. Bindings for nets outside the cones are
    /// left untouched and unqueryable.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::Unbound`] if a used net inside the cones has no
    /// driver and was not pre-bound.
    pub fn encode_cone<S: ClauseSink>(
        &mut self,
        solver: &mut S,
        roots: &[NetId],
    ) -> Result<(), EncodeError> {
        self.encode_impl(solver, Some(roots), None, 0)
    }

    /// [`CircuitEncoder::encode_cone`] with a precomputed topological gate
    /// order (as returned by [`netlist::topo::gate_order`] for this
    /// netlist). Callers that encode many cones of the same netlist — the
    /// DIP loop encodes two per oracle observation — compute the order once
    /// instead of re-sorting the whole netlist per call.
    pub fn encode_cone_ordered<S: ClauseSink>(
        &mut self,
        solver: &mut S,
        roots: &[NetId],
        order: &[netlist::GateId],
    ) -> Result<(), EncodeError> {
        self.encode_impl(solver, Some(roots), Some(order), 0)
    }

    fn encode_impl<S: ClauseSink>(
        &mut self,
        solver: &mut S,
        roots: Option<&[NetId]>,
        order: Option<&[netlist::GateId]>,
        first_new_gate: usize,
    ) -> Result<(), EncodeError> {
        // Cone-of-influence restriction: mark every net some root depends on.
        let needed: Option<Vec<bool>> = roots.map(|roots| {
            let mut needed = vec![false; self.netlist.num_nets()];
            let mut stack: Vec<NetId> = roots.to_vec();
            while let Some(n) = stack.pop() {
                if needed[n.index()] {
                    continue;
                }
                needed[n.index()] = true;
                if let Driver::Gate(gid) = self.netlist.driver(n) {
                    for &input in self.netlist.gate_fanins(gid) {
                        if !needed[input.index()] {
                            stack.push(input);
                        }
                    }
                }
            }
            needed
        });
        let is_needed = |net: NetId| needed.as_ref().is_none_or(|n| n[net.index()]);

        // Primary inputs: fresh variables unless bound.
        for &input in self.netlist.inputs() {
            if is_needed(input) && self.map[input.index()].is_none() {
                self.map[input.index()] = Some(Bound::Lit(Lit::positive(solver.new_var())));
            }
        }
        // Declared-but-undriven nets must have been bound by the caller.
        // Extension calls skip the upfront sweep: prefix nets outside the
        // original encoding may legitimately be unbound, and the per-fanin
        // lookup below still reports any unbound net a new gate reads.
        if first_new_gate == 0 {
            for net in self.netlist.net_ids() {
                if is_needed(net)
                    && self.netlist.driver(net) == Driver::None
                    && self.map[net.index()].is_none()
                {
                    return Err(EncodeError::Unbound(self.netlist.net_name(net).to_string()));
                }
            }
        }
        let computed_order;
        let order = match order {
            Some(order) => order,
            None => {
                computed_order = netlist::topo::gate_order(self.netlist)?;
                &computed_order
            }
        };
        // Scratch buffers reused across gates: input bounds, folded literal
        // lists, and the long clause of AND/OR encodings. After they reach
        // the widest fanin seen, the per-gate loop performs no heap
        // allocation at all.
        let mut in_bounds: Vec<Bound> = Vec::new();
        let mut lits: Vec<Lit> = Vec::new();
        let mut clause: Vec<Lit> = Vec::new();
        for &gid in order {
            if gid.index() < first_new_gate {
                continue;
            }
            let out_net = self.netlist.gate_output(gid);
            if !is_needed(out_net) {
                continue;
            }
            in_bounds.clear();
            for &n in self.netlist.gate_fanins(gid) {
                in_bounds.push(
                    self.map[n.index()].ok_or_else(|| {
                        EncodeError::Unbound(self.netlist.net_label(n).to_string())
                    })?,
                );
            }
            let kind = self.netlist.gate_kind(gid);
            let folded = if self.folding {
                fold_gate(kind, &in_bounds, &mut lits)
            } else {
                lits.clear();
                lits.extend(in_bounds.iter().map(|b| {
                    b.as_lit()
                        .expect("bind_const requires folding to stay enabled")
                }));
                Folded::Raw(kind, &lits)
            };
            self.emit(solver, out_net, folded, &mut clause);
        }
        Ok(())
    }

    /// Materializes the folded form of one gate: records constant/alias
    /// bindings without clauses, or allocates/reuses an output literal and
    /// adds the remaining Tseitin clauses. `clause` is scratch space for the
    /// wide AND/OR clause, reused across calls.
    fn emit<S: ClauseSink>(
        &mut self,
        solver: &mut S,
        out_net: NetId,
        folded: Folded<'_>,
        clause: &mut Vec<Lit>,
    ) {
        let existing = self.map[out_net.index()];
        match folded {
            Folded::Const(v) => match existing {
                None => self.map[out_net.index()] = Some(Bound::Const(v)),
                Some(Bound::Lit(l)) => {
                    solver.add_clause(&[if v { l } else { !l }]);
                }
                Some(Bound::Const(u)) => {
                    if u != v {
                        // The pre-bound constant contradicts the folded one:
                        // the formula is unsatisfiable.
                        solver.add_clause(&[]);
                    }
                }
            },
            Folded::Alias(l) => match existing {
                None => self.map[out_net.index()] = Some(Bound::Lit(l)),
                Some(Bound::Lit(out)) => encode_equal(solver, out, l),
                Some(Bound::Const(u)) => {
                    solver.add_clause(&[if u { l } else { !l }]);
                }
            },
            gate => {
                let out = match existing {
                    Some(Bound::Lit(l)) => l,
                    None => {
                        let l = Lit::positive(solver.new_var());
                        self.map[out_net.index()] = Some(Bound::Lit(l));
                        l
                    }
                    Some(Bound::Const(u)) => {
                        // Rare: an output pre-pinned to a constant that does
                        // not fold. Materialize a literal and assert it.
                        let l = Lit::positive(solver.new_var());
                        solver.add_clause(&[if u { l } else { !l }]);
                        l
                    }
                };
                match gate {
                    Folded::And(lits, invert) => {
                        encode_and(solver, if invert { !out } else { out }, lits, clause)
                    }
                    Folded::Or(lits, invert) => {
                        encode_or(solver, if invert { !out } else { out }, lits, clause)
                    }
                    Folded::Xor(lits, invert) => {
                        encode_parity(solver, if invert { !out } else { out }, lits)
                    }
                    Folded::Mux(s, a, b) => encode_mux(solver, out, s, a, b),
                    Folded::Raw(kind, lits) => encode_gate_with(solver, kind, out, lits, clause),
                    Folded::Const(_) | Folded::Alias(_) => unreachable!("handled above"),
                }
            }
        }
    }
}

/// Folds one gate over its input bounds. `lits` is scratch space for the
/// surviving literal list, reused across gates.
fn fold_gate<'s>(kind: GateKind, ins: &[Bound], lits: &'s mut Vec<Lit>) -> Folded<'s> {
    assert!(
        kind.arity_ok(ins.len()),
        "gate {kind} encoded with {} inputs",
        ins.len()
    );
    match kind {
        GateKind::Const0 => Folded::Const(false),
        GateKind::Const1 => Folded::Const(true),
        GateKind::Buf => bound_to_folded(ins[0]),
        GateKind::Not => bound_to_folded(ins[0].negate()),
        GateKind::And => fold_and(ins, false, lits),
        GateKind::Nand => fold_and(ins, true, lits),
        GateKind::Or => fold_or(ins, false, lits),
        GateKind::Nor => fold_or(ins, true, lits),
        GateKind::Xor => fold_xor(ins, false, lits),
        GateKind::Xnor => fold_xor(ins, true, lits),
        GateKind::Mux => fold_mux(ins[0], ins[1], ins[2], lits),
    }
}

fn bound_to_folded<'s>(b: Bound) -> Folded<'s> {
    match b {
        Bound::Lit(l) => Folded::Alias(l),
        Bound::Const(v) => Folded::Const(v),
    }
}

/// Replaces the contents of `lits` with `pair` and returns it as a slice.
fn pair_slice(lits: &mut Vec<Lit>, pair: [Lit; 2]) -> &[Lit] {
    lits.clear();
    lits.extend_from_slice(&pair);
    lits
}

fn fold_and<'s>(ins: &[Bound], invert: bool, lits: &'s mut Vec<Lit>) -> Folded<'s> {
    lits.clear();
    for &b in ins {
        match b {
            Bound::Const(false) => return Folded::Const(invert),
            Bound::Const(true) => {}
            Bound::Lit(l) => {
                if lits.contains(&!l) {
                    return Folded::Const(invert); // x ∧ ¬x
                }
                if !lits.contains(&l) {
                    lits.push(l);
                }
            }
        }
    }
    match lits.len() {
        0 => Folded::Const(!invert),
        1 => Folded::Alias(if invert { !lits[0] } else { lits[0] }),
        _ => Folded::And(lits, invert),
    }
}

fn fold_or<'s>(ins: &[Bound], invert: bool, lits: &'s mut Vec<Lit>) -> Folded<'s> {
    lits.clear();
    for &b in ins {
        match b {
            Bound::Const(true) => return Folded::Const(!invert),
            Bound::Const(false) => {}
            Bound::Lit(l) => {
                if lits.contains(&!l) {
                    return Folded::Const(!invert); // x ∨ ¬x
                }
                if !lits.contains(&l) {
                    lits.push(l);
                }
            }
        }
    }
    match lits.len() {
        0 => Folded::Const(invert),
        1 => Folded::Alias(if invert { !lits[0] } else { lits[0] }),
        _ => Folded::Or(lits, invert),
    }
}

fn fold_xor<'s>(ins: &[Bound], mut invert: bool, lits: &'s mut Vec<Lit>) -> Folded<'s> {
    lits.clear();
    for &b in ins {
        match b {
            Bound::Const(v) => invert ^= v,
            Bound::Lit(l) => {
                // Pairs over the same variable cancel: x⊕x = 0, x⊕¬x = 1.
                if let Some(pos) = lits.iter().position(|e| e.var() == l.var()) {
                    let e = lits.remove(pos);
                    if e != l {
                        invert = !invert;
                    }
                } else {
                    lits.push(l);
                }
            }
        }
    }
    match lits.len() {
        0 => Folded::Const(invert),
        1 => Folded::Alias(if invert { !lits[0] } else { lits[0] }),
        _ => Folded::Xor(lits, invert),
    }
}

fn fold_mux<'s>(s: Bound, a: Bound, b: Bound, lits: &'s mut Vec<Lit>) -> Folded<'s> {
    // out = s ? b : a
    let s = match s {
        Bound::Const(true) => return bound_to_folded(b),
        Bound::Const(false) => return bound_to_folded(a),
        Bound::Lit(l) => l,
    };
    match (a, b) {
        (Bound::Const(va), Bound::Const(vb)) => {
            if va == vb {
                Folded::Const(va)
            } else if vb {
                Folded::Alias(s) // 0 on s=0, 1 on s=1
            } else {
                Folded::Alias(!s)
            }
        }
        (Bound::Const(va), Bound::Lit(lb)) => {
            if va {
                Folded::Or(pair_slice(lits, [!s, lb]), false) // s ? b : 1
            } else {
                Folded::And(pair_slice(lits, [s, lb]), false) // s ? b : 0
            }
        }
        (Bound::Lit(la), Bound::Const(vb)) => {
            if vb {
                Folded::Or(pair_slice(lits, [s, la]), false) // s ? 1 : a
            } else {
                Folded::And(pair_slice(lits, [!s, la]), false) // s ? 0 : a
            }
        }
        (Bound::Lit(la), Bound::Lit(lb)) => {
            if la == lb {
                Folded::Alias(la)
            } else if la == !lb {
                Folded::Xor(pair_slice(lits, [s, lb]), true) // s ? b : ¬b  ⟺  out = s ≡ b
            } else {
                Folded::Mux(s, la, lb)
            }
        }
    }
}

/// Adds the Tseitin clauses for `out = kind(inputs)` to the solver, without
/// any folding.
///
/// # Panics
///
/// Panics if the input count violates the gate arity.
pub fn encode_gate<S: ClauseSink>(solver: &mut S, kind: GateKind, out: Lit, inputs: &[Lit]) {
    encode_gate_with(solver, kind, out, inputs, &mut Vec::new());
}

/// [`encode_gate`] with caller-provided scratch space for the wide AND/OR
/// clause, so repeated encoding allocates nothing per gate.
fn encode_gate_with<S: ClauseSink>(
    solver: &mut S,
    kind: GateKind,
    out: Lit,
    inputs: &[Lit],
    clause: &mut Vec<Lit>,
) {
    assert!(
        kind.arity_ok(inputs.len()),
        "gate {kind} encoded with {} inputs",
        inputs.len()
    );
    match kind {
        GateKind::Const0 => {
            solver.add_clause(&[!out]);
        }
        GateKind::Const1 => {
            solver.add_clause(&[out]);
        }
        GateKind::Buf => encode_equal(solver, out, inputs[0]),
        GateKind::Not => encode_equal(solver, out, !inputs[0]),
        GateKind::And => encode_and(solver, out, inputs, clause),
        GateKind::Nand => encode_and(solver, !out, inputs, clause),
        GateKind::Or => encode_or(solver, out, inputs, clause),
        GateKind::Nor => encode_or(solver, !out, inputs, clause),
        GateKind::Xor => encode_parity(solver, out, inputs),
        GateKind::Xnor => encode_parity(solver, !out, inputs),
        GateKind::Mux => encode_mux(solver, out, inputs[0], inputs[1], inputs[2]),
    }
}

/// Constrains `a = b`.
pub fn encode_equal<S: ClauseSink>(solver: &mut S, a: Lit, b: Lit) {
    solver.add_clause(&[!a, b]);
    solver.add_clause(&[a, !b]);
}

fn encode_and<S: ClauseSink>(solver: &mut S, out: Lit, inputs: &[Lit], long_clause: &mut Vec<Lit>) {
    long_clause.clear();
    for &i in inputs {
        solver.add_clause(&[!out, i]);
        long_clause.push(!i);
    }
    long_clause.push(out);
    solver.add_clause(long_clause);
}

fn encode_or<S: ClauseSink>(solver: &mut S, out: Lit, inputs: &[Lit], long_clause: &mut Vec<Lit>) {
    long_clause.clear();
    for &i in inputs {
        solver.add_clause(&[out, !i]);
        long_clause.push(i);
    }
    long_clause.push(!out);
    solver.add_clause(long_clause);
}

/// Constrains `out = s ? b : a`.
fn encode_mux<S: ClauseSink>(solver: &mut S, out: Lit, s: Lit, a: Lit, b: Lit) {
    solver.add_clause(&[!s, !b, out]);
    solver.add_clause(&[!s, b, !out]);
    solver.add_clause(&[s, !a, out]);
    solver.add_clause(&[s, a, !out]);
    // Redundant but propagation-friendly clauses.
    solver.add_clause(&[!a, !b, out]);
    solver.add_clause(&[a, b, !out]);
}

/// Constrains `out = a ^ b` for exactly two operands.
fn encode_xor2<S: ClauseSink>(solver: &mut S, out: Lit, a: Lit, b: Lit) {
    solver.add_clause(&[!out, a, b]);
    solver.add_clause(&[!out, !a, !b]);
    solver.add_clause(&[out, !a, b]);
    solver.add_clause(&[out, a, !b]);
}

/// Constrains `out` to the parity (XOR) of an arbitrary number of operands by
/// chaining 2-input XORs through auxiliary variables.
fn encode_parity<S: ClauseSink>(solver: &mut S, out: Lit, inputs: &[Lit]) {
    match inputs.len() {
        0 => {
            solver.add_clause(&[!out]);
        }
        1 => encode_equal(solver, out, inputs[0]),
        2 => encode_xor2(solver, out, inputs[0], inputs[1]),
        _ => {
            let mut acc = inputs[0];
            for (i, &next) in inputs[1..].iter().enumerate() {
                let target = if i == inputs.len() - 2 {
                    out
                } else {
                    Lit::positive(solver.new_var())
                };
                encode_xor2(solver, target, acc, next);
                acc = target;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SatResult, Solver, Var};
    use netlist::Netlist;

    fn direct_eval(netlist: &Netlist, pattern: u64) -> Vec<bool> {
        let order = netlist::topo::gate_order(netlist).unwrap();
        let mut values = vec![false; netlist.num_nets()];
        for (i, &input) in netlist.inputs().iter().enumerate() {
            values[input.index()] = (pattern >> i) & 1 == 1;
        }
        for &gid in &order {
            let g = netlist.gate(gid);
            let ins: Vec<bool> = g.inputs().iter().map(|&n| values[n.index()]).collect();
            values[g.output().index()] = g.kind().eval(&ins);
        }
        values
    }

    /// Checks that the CNF encoding of a combinational circuit agrees with
    /// direct gate evaluation on every input assignment, with and without
    /// folding.
    fn assert_encoding_matches(netlist: &Netlist) {
        let n_inputs = netlist.num_inputs();
        assert!(n_inputs <= 10, "exhaustive check limited to 10 inputs");
        for folding in [true, false] {
            for pattern in 0..(1u64 << n_inputs) {
                let values = direct_eval(netlist, pattern);
                // CNF evaluation: constrain inputs, solve, compare outputs.
                let mut solver = Solver::new();
                let mut encoder = CircuitEncoder::new(netlist).unwrap();
                encoder.set_folding(folding);
                encoder.encode(&mut solver).unwrap();
                for (i, &input) in netlist.inputs().iter().enumerate() {
                    let lit = encoder.lit(input).unwrap();
                    let want = (pattern >> i) & 1 == 1;
                    solver.add_clause(&[if want { lit } else { !lit }]);
                }
                match solver.solve() {
                    SatResult::Sat(model) => {
                        for &out in netlist.outputs() {
                            let got = match encoder.bound(out).unwrap() {
                                Bound::Lit(lit) => model.lit_value(lit),
                                Bound::Const(v) => v,
                            };
                            assert_eq!(
                                got,
                                values[out.index()],
                                "output {} pattern {pattern:b} folding {folding}",
                                netlist.net_name(out)
                            );
                        }
                    }
                    SatResult::Unsat => {
                        panic!("encoding must be satisfiable for pattern {pattern}")
                    }
                    SatResult::Interrupted => panic!("no SolveControl installed"),
                }
            }
        }
    }

    #[test]
    fn all_gate_kinds_encode_correctly() {
        let mut nl = Netlist::new("gates");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let kinds = [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let o2 = nl.add_gate(kind, &[a, b], format!("o2_{i}")).unwrap();
            nl.mark_output(o2).unwrap();
            let o3 = nl.add_gate(kind, &[a, b, c], format!("o3_{i}")).unwrap();
            nl.mark_output(o3).unwrap();
        }
        let on = nl.add_gate(GateKind::Not, &[a], "on").unwrap();
        nl.mark_output(on).unwrap();
        let ob = nl.add_gate(GateKind::Buf, &[b], "ob").unwrap();
        nl.mark_output(ob).unwrap();
        let om = nl.add_gate(GateKind::Mux, &[a, b, c], "om").unwrap();
        nl.mark_output(om).unwrap();
        let oc0 = nl.add_gate(GateKind::Const0, &[], "oc0").unwrap();
        nl.mark_output(oc0).unwrap();
        let oc1 = nl.add_gate(GateKind::Const1, &[], "oc1").unwrap();
        nl.mark_output(oc1).unwrap();
        assert_encoding_matches(&nl);
    }

    #[test]
    fn wide_parity_encodes_correctly() {
        let mut nl = Netlist::new("parity");
        let ins: Vec<_> = (0..6).map(|i| nl.add_input(format!("i{i}"))).collect();
        let x = nl.add_gate(GateKind::Xor, &ins, "x").unwrap();
        nl.mark_output(x).unwrap();
        let nx = nl.add_gate(GateKind::Xnor, &ins, "nx").unwrap();
        nl.mark_output(nx).unwrap();
        assert_encoding_matches(&nl);
    }

    #[test]
    fn gates_with_shared_and_degenerate_inputs_encode_correctly() {
        // And(a,a), Xor(a,a), Mux(s,a,a), Mux with constant arms: the folding
        // shortcuts must agree with direct evaluation.
        let mut nl = Netlist::new("degenerate");
        let a = nl.add_input("a");
        let s = nl.add_input("s");
        let c1 = nl.add_gate(GateKind::Const1, &[], "c1").unwrap();
        let na = nl.add_gate(GateKind::Not, &[a], "na").unwrap();
        for (i, (kind, ins)) in [
            (GateKind::And, vec![a, a]),
            (GateKind::And, vec![a, na]),
            (GateKind::Or, vec![a, na]),
            (GateKind::Xor, vec![a, a]),
            (GateKind::Xor, vec![a, na]),
            (GateKind::Xnor, vec![a, a, na]),
            (GateKind::Mux, vec![s, a, a]),
            (GateKind::Mux, vec![s, a, na]),
            (GateKind::Mux, vec![s, c1, a]),
            (GateKind::Mux, vec![s, a, c1]),
            (GateKind::Mux, vec![c1, a, s]),
            (GateKind::And, vec![a, c1, s]),
            (GateKind::Or, vec![a, c1, s]),
        ]
        .into_iter()
        .enumerate()
        {
            let out = nl.add_gate(kind, &ins, format!("d{i}")).unwrap();
            nl.mark_output(out).unwrap();
        }
        assert_encoding_matches(&nl);
    }

    #[test]
    fn bind_const_folds_the_bound_cone_away() {
        // o = (a & b) ^ c: binding a=0 folds the AND and turns the XOR into
        // an alias of c — no new variables or clauses at all.
        let mut nl = Netlist::new("fold");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let o = nl.add_gate(GateKind::Xor, &[ab, c], "o").unwrap();
        nl.mark_output(o).unwrap();

        let mut solver = Solver::new();
        let c_lit = Lit::positive(solver.new_var());
        let mut enc = CircuitEncoder::new(&nl).unwrap();
        enc.bind_const(a, false);
        enc.bind_const(b, true);
        enc.bind(c, c_lit);
        enc.encode(&mut solver).unwrap();
        assert_eq!(enc.bound(ab), Some(Bound::Const(false)));
        assert_eq!(enc.bound(o), Some(Bound::Lit(c_lit)));
        assert_eq!(solver.num_vars(), 1, "no new variables");
        assert_eq!(solver.num_clauses(), 0, "no clauses");

        // Binding a=1 instead leaves o = b ^ c alive.
        let mut solver = Solver::new();
        let c_lit = Lit::positive(solver.new_var());
        let b_lit = Lit::positive(solver.new_var());
        let mut enc = CircuitEncoder::new(&nl).unwrap();
        enc.bind_const(a, true);
        enc.bind(b, b_lit);
        enc.bind(c, c_lit);
        enc.encode(&mut solver).unwrap();
        assert_eq!(enc.bound(ab), Some(Bound::Lit(b_lit)), "AND aliased to b");
        let o_lit = enc.lit(o).unwrap();
        // Exhaustively check o = b ^ c.
        for pattern in 0..4u8 {
            let bv = pattern & 1 == 1;
            let cv = pattern & 2 == 2;
            let mut s = solver.clone();
            s.add_clause(&[if bv { b_lit } else { !b_lit }]);
            s.add_clause(&[if cv { c_lit } else { !c_lit }]);
            match s.solve() {
                SatResult::Sat(m) => assert_eq!(m.lit_value(o_lit), bv ^ cv),
                SatResult::Unsat => panic!("satisfiable"),
                SatResult::Interrupted => panic!("no SolveControl installed"),
            }
        }
    }

    #[test]
    fn encode_cone_skips_logic_outside_the_cone() {
        // Two disjoint cones; restricting to one allocates nothing for the
        // other.
        let mut nl = Netlist::new("cones");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let o1 = nl.add_gate(GateKind::And, &[a, b], "o1").unwrap();
        let o2 = nl.add_gate(GateKind::Or, &[c, d], "o2").unwrap();
        nl.mark_output(o1).unwrap();
        nl.mark_output(o2).unwrap();

        let mut solver = Solver::new();
        let mut enc = CircuitEncoder::new(&nl).unwrap();
        enc.encode_cone(&mut solver, &[o1]).unwrap();
        // a, b and the AND output got variables; c, d, o2 did not.
        assert_eq!(solver.num_vars(), 3);
        assert!(enc.bound(o1).is_some());
        assert!(enc.bound(o2).is_none());
        assert!(enc.bound(c).is_none());
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn sequential_netlists_are_rejected() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let q = nl.declare_dff("q", false).unwrap();
        nl.bind_dff(q, a).unwrap();
        nl.mark_output(q).unwrap();
        assert!(matches!(
            CircuitEncoder::new(&nl),
            Err(EncodeError::Sequential { dffs: 1 })
        ));
    }

    #[test]
    fn binding_inputs_shares_variables_between_copies() {
        // Encode the same circuit twice with shared inputs and check that the
        // outputs are forced equal (the miter of identical circuits is UNSAT
        // when asked for a difference).
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let o = nl.add_gate(GateKind::And, &[a, b], "o").unwrap();
        nl.mark_output(o).unwrap();

        let mut solver = Solver::new();
        let shared: Vec<Lit> = (0..2).map(|_| Lit::positive(solver.new_var())).collect();

        let mut enc1 = CircuitEncoder::new(&nl).unwrap();
        let mut enc2 = CircuitEncoder::new(&nl).unwrap();
        for (i, &input) in nl.inputs().iter().enumerate() {
            enc1.bind(input, shared[i]);
            enc2.bind(input, shared[i]);
        }
        enc1.encode(&mut solver).unwrap();
        enc2.encode(&mut solver).unwrap();
        let o1 = enc1.lit(o).unwrap();
        let o2 = enc2.lit(o).unwrap();
        // Ask for a difference: o1 != o2 must be UNSAT.
        let diff = Lit::positive(solver.new_var());
        encode_xor2(&mut solver, diff, o1, o2);
        solver.add_clause(&[diff]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn unbound_undriven_net_is_reported() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let x = nl.declare_net("x").unwrap();
        let o = nl.add_gate(GateKind::And, &[a, x], "o").unwrap();
        nl.mark_output(o).unwrap();
        // Without binding `x` the netlist does not even validate, so bind it
        // to exercise the encoder path, then drop the binding to see the error.
        let mut solver = Solver::new();
        let mut enc = CircuitEncoder {
            netlist: &nl,
            map: vec![None; nl.num_nets()],
            folding: true,
        };
        let err = enc.encode(&mut solver).unwrap_err();
        assert!(matches!(err, EncodeError::Unbound(_)));
        // Now bind and encode successfully.
        let mut solver = Solver::new();
        let free = Lit::positive(solver.new_var());
        let mut enc = CircuitEncoder {
            netlist: &nl,
            map: vec![None; nl.num_nets()],
            folding: true,
        };
        enc.bind(x, free);
        enc.encode(&mut solver).unwrap();
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn resumed_extension_matches_a_fresh_encoding() {
        // A 1-bit accumulator (q' = q ^ a, out = q ^ a observed per cycle):
        // encode its 2-cycle unrolling, then resume the map over the 3-cycle
        // unrolling and encode only the appended timeframe. The extended
        // encoding must agree with direct evaluation of the deep unrolling on
        // every input pattern, and the prefix must keep its bindings.
        let mut nl = Netlist::new("acc");
        let a = nl.add_input("a");
        let q = nl.declare_dff("q", false).unwrap();
        let x = nl.add_gate(GateKind::Xor, &[a, q], "x").unwrap();
        nl.bind_dff(q, x).unwrap();
        nl.mark_output(x).unwrap();

        let short = netlist::unroll::unroll(&nl, 2).unwrap();
        let long = netlist::unroll::unroll(&nl, 3).unwrap();

        let mut solver = Solver::new();
        let mut enc = CircuitEncoder::new(&short.netlist).unwrap();
        enc.encode(&mut solver).unwrap();
        let prefix_outputs: Vec<Option<Bound>> = short
            .outputs
            .iter()
            .flatten()
            .map(|&n| enc.bound(n))
            .collect();
        let first_new_gate = short.netlist.num_gates();
        let mut enc = CircuitEncoder::resume(&long.netlist, enc.into_map()).unwrap();
        let order = netlist::topo::gate_order(&long.netlist).unwrap();
        enc.encode_extension(&mut solver, &order, first_new_gate)
            .unwrap();

        // Prefix bindings survived untouched.
        for (old, &net) in prefix_outputs.iter().zip(short.outputs.iter().flatten()) {
            assert_eq!(*old, enc.bound(net), "prefix binding changed");
        }

        // The extension agrees with direct evaluation of the deep unrolling.
        for pattern in 0..(1u64 << long.netlist.num_inputs()) {
            let values = direct_eval(&long.netlist, pattern);
            let assumptions: Vec<Lit> = long
                .netlist
                .inputs()
                .iter()
                .enumerate()
                .map(|(i, &input)| {
                    let lit = enc.lit(input).unwrap();
                    if (pattern >> i) & 1 == 1 {
                        lit
                    } else {
                        !lit
                    }
                })
                .collect();
            match solver.solve_with_assumptions(&assumptions) {
                SatResult::Sat(m) => {
                    for &out in long.outputs.iter().flatten() {
                        let got = match enc.bound(out).unwrap() {
                            Bound::Lit(l) => m.lit_value(l),
                            Bound::Const(v) => v,
                        };
                        assert_eq!(got, values[out.index()], "pattern {pattern:b}");
                    }
                }
                other => panic!("pattern {pattern:b}: {other:?}"),
            }
        }
    }

    #[test]
    fn output_and_input_lits_are_exposed() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let o = nl.add_gate(GateKind::Not, &[a], "o").unwrap();
        nl.mark_output(o).unwrap();
        let mut solver = Solver::new();
        let mut enc = CircuitEncoder::new(&nl).unwrap();
        enc.encode(&mut solver).unwrap();
        assert_eq!(enc.input_lits().len(), 1);
        assert_eq!(enc.output_lits().len(), 1);
        assert_ne!(enc.input_lits()[0], enc.output_lits()[0]);
        let _ = Var::from_index(0);
    }
}
