//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Dense index of the variable (0-based).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a variable from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Var(index as u32)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}

/// A literal: a variable together with a polarity.
///
/// Internally encoded as `2*var + sign` where `sign == 1` means negated, the
/// usual MiniSat convention. The encoding is exposed through
/// [`Lit::code`] so that watch lists can be indexed directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `var`.
    #[inline]
    pub fn positive(var: Var) -> Self {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    #[inline]
    pub fn negative(var: Var) -> Self {
        Lit((var.0 << 1) | 1)
    }

    /// Builds a literal with an explicit polarity (`true` = positive).
    #[inline]
    pub fn new(var: Var, positive: bool) -> Self {
        if positive {
            Lit::positive(var)
        } else {
            Lit::negative(var)
        }
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if the literal is negated.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// `true` if the literal is positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        !self.is_negative()
    }

    /// Dense code of the literal (`2*var + sign`), usable as an array index.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Builds a literal back from its dense code.
    #[inline]
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }

    /// Reads a literal from the DIMACS integer convention: positive integers
    /// are positive literals of variable `n-1`, negative integers are negated.
    ///
    /// Returns `None` for 0 (the DIMACS clause terminator).
    pub fn from_dimacs(value: i64) -> Option<Self> {
        if value == 0 {
            return None;
        }
        let var = Var((value.unsigned_abs() - 1) as u32);
        Some(Lit::new(var, value > 0))
    }

    /// Converts to the DIMACS integer convention.
    pub fn to_dimacs(self) -> i64 {
        let v = (self.var().0 + 1) as i64;
        if self.is_negative() {
            -v
        } else {
            v
        }
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var::from_index(5);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(n.is_negative());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(Lit::from_code(p.code()), p);
    }

    #[test]
    fn dimacs_conversion() {
        let v = Var::from_index(0);
        assert_eq!(Lit::positive(v).to_dimacs(), 1);
        assert_eq!(Lit::negative(v).to_dimacs(), -1);
        assert_eq!(Lit::from_dimacs(3), Some(Lit::positive(Var::from_index(2))));
        assert_eq!(
            Lit::from_dimacs(-3),
            Some(Lit::negative(Var::from_index(2)))
        );
        assert_eq!(Lit::from_dimacs(0), None);
    }

    #[test]
    fn display_formats() {
        let v = Var::from_index(0);
        assert_eq!(Lit::positive(v).to_string(), "x1");
        assert_eq!(Lit::negative(v).to_string(), "¬x1");
    }

    #[test]
    fn new_respects_polarity_flag() {
        let v = Var::from_index(9);
        assert_eq!(Lit::new(v, true), Lit::positive(v));
        assert_eq!(Lit::new(v, false), Lit::negative(v));
    }
}
