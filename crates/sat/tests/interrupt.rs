//! Interruption invariants for [`SolveControl`].
//!
//! An interrupted solve must be a pure pause: the verdict eventually reached
//! by a chain of budgeted slices has to equal the verdict of one
//! uninterrupted call, the cumulative search effort must stay in the same
//! ballpark (the learnt-clause database survives each interruption), and the
//! solver must remain usable — incrementally and under assumptions — after
//! any number of interruptions. Both the arena [`Solver`] and the retained
//! [`reference::Solver`] are held to the same contract.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sat::{reference, Lit, SatEngine, SatResult, SolveControl, Solver, Var};

/// Encodes the pigeonhole principle PHP(pigeons, holes): UNSAT iff
/// `pigeons > holes`, and expensive enough for small sizes that a conflict
/// budget of a few dozen interrupts the solve many times over.
fn encode_php(engine: &mut impl SatEngine, pigeons: usize, holes: usize) -> Vec<Vec<Lit>> {
    let vars: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| engine.new_var()).collect())
        .collect();
    let mut clauses = Vec::new();
    // Every pigeon sits in some hole.
    for row in &vars {
        let clause: Vec<Lit> = row.iter().map(|&v| Lit::positive(v)).collect();
        clauses.push(clause);
    }
    // No two pigeons share a hole.
    for h in 0..holes {
        for (a, row_a) in vars.iter().enumerate() {
            for row_b in vars.iter().skip(a + 1) {
                clauses.push(vec![Lit::negative(row_a[h]), Lit::negative(row_b[h])]);
            }
        }
    }
    for clause in &clauses {
        engine.add_clause(clause);
    }
    clauses
}

/// Deterministic split-mix style generator for the planted instances.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Random 3-SAT with a planted solution: guaranteed satisfiable, but dense
/// enough that CDCL needs a healthy number of conflicts to find a model.
fn encode_planted(
    engine: &mut impl SatEngine,
    num_vars: usize,
    num_clauses: usize,
    seed: u64,
) -> Vec<Vec<Lit>> {
    let mut rng = Lcg(seed);
    let vars: Vec<Var> = (0..num_vars).map(|_| engine.new_var()).collect();
    let hidden: Vec<bool> = (0..num_vars).map(|_| rng.next() & 1 == 1).collect();
    let mut clauses = Vec::new();
    for _ in 0..num_clauses {
        let mut picks = Vec::new();
        while picks.len() < 3 {
            let v = (rng.next() as usize) % num_vars;
            if !picks.contains(&v) {
                picks.push(v);
            }
        }
        let mut lits: Vec<Lit> = picks
            .iter()
            .map(|&v| Lit::new(vars[v], rng.next() & 1 == 1))
            .collect();
        // Keep the hidden assignment a model: force one literal to agree.
        if !lits
            .iter()
            .any(|l| hidden[l.var().index()] != l.is_negative())
        {
            let fix = (rng.next() as usize) % 3;
            let v = lits[fix].var();
            lits[fix] = Lit::new(v, hidden[v.index()]);
        }
        engine.add_clause(&lits);
        clauses.push(lits);
    }
    clauses
}

fn model_satisfies(clauses: &[Vec<Lit>], result: &SatResult) -> bool {
    let model = result.model().expect("SAT result carries a model");
    clauses
        .iter()
        .all(|clause| clause.iter().any(|&l| model.lit_value(l)))
}

/// Solves in budgeted slices until a verdict, returning it together with the
/// number of interruptions survived on the way.
fn solve_in_slices<E: SatEngine>(
    engine: &mut E,
    budget: u64,
    assumptions: &[Lit],
) -> (SatResult, u64) {
    let mut interruptions = 0;
    loop {
        engine.set_control(SolveControl::with_conflict_budget(budget));
        match engine.solve_with_assumptions(assumptions) {
            SatResult::Interrupted => {
                interruptions += 1;
                assert!(
                    interruptions < 100_000,
                    "sliced solve failed to converge (budget {budget})"
                );
            }
            verdict => {
                engine.set_control(SolveControl::unlimited());
                return (verdict, interruptions);
            }
        }
    }
}

#[test]
fn sliced_unsat_verdict_matches_uninterrupted_arena() {
    let mut baseline = Solver::new();
    encode_php(&mut baseline, 7, 6);
    assert_eq!(baseline.solve(), SatResult::Unsat);
    let base_conflicts = baseline.stats().conflicts;
    assert!(base_conflicts > 40, "PHP(7,6) should be nontrivial");

    let mut sliced = Solver::new();
    encode_php(&mut sliced, 7, 6);
    let (verdict, interruptions) = solve_in_slices(&mut sliced, 20, &[]);
    assert_eq!(verdict, SatResult::Unsat);
    assert!(
        interruptions > 0,
        "budget of 20 must interrupt at least once"
    );

    // The learnt database survives each interruption, so the total effort of
    // the sliced run stays within a small factor of the uninterrupted run.
    let sliced_conflicts = sliced.stats().conflicts;
    assert!(
        sliced_conflicts <= base_conflicts * 4 + 200,
        "sliced effort exploded: {sliced_conflicts} vs {base_conflicts} uninterrupted"
    );
}

#[test]
fn sliced_sat_verdict_matches_uninterrupted_arena() {
    let mut baseline = Solver::new();
    let clauses = encode_planted(&mut baseline, 60, 250, 0xA5A5_1234);
    let base = baseline.solve();
    assert!(model_satisfies(&clauses, &base));

    let mut sliced = Solver::new();
    let clauses = encode_planted(&mut sliced, 60, 250, 0xA5A5_1234);
    let (verdict, _) = solve_in_slices(&mut sliced, 5, &[]);
    assert!(
        model_satisfies(&clauses, &verdict),
        "sliced run must still produce a genuine model"
    );
}

#[test]
fn sliced_solve_matches_on_reference_engine() {
    let mut baseline = reference::Solver::new();
    encode_php(&mut baseline, 6, 5);
    assert_eq!(baseline.solve(), SatResult::Unsat);

    let mut sliced = reference::Solver::new();
    encode_php(&mut sliced, 6, 5);
    let (verdict, interruptions) = solve_in_slices(&mut sliced, 10, &[]);
    assert_eq!(verdict, SatResult::Unsat);
    assert!(interruptions > 0);
}

#[test]
fn interruption_preserves_incremental_and_assumption_use() {
    let mut solver = Solver::new();
    let clauses = encode_php(&mut solver, 6, 6); // satisfiable: one pigeon per hole
    let pivot = clauses[0][0]; // "pigeon 0 in hole 0"

    // Interrupt a few times under an assumption, then finish.
    let (verdict, _) = solve_in_slices(&mut solver, 1, &[pivot]);
    let model = verdict.model().expect("PHP(6,6) is satisfiable");
    assert!(
        model.lit_value(pivot),
        "assumption honored after interruptions"
    );

    // The solver stays incrementally usable: forbid the pivot and resolve.
    solver.add_clause(&[Lit::new(pivot.var(), false)]);
    let (verdict, _) = solve_in_slices(&mut solver, 1, &[]);
    assert!(verdict.is_sat(), "PHP(6,6) stays SAT without the pivot");
    assert!(!verdict.model().unwrap().lit_value(pivot));

    // Under the now-contradicted assumption the verdict is UNSAT, sliced or not.
    let (verdict, _) = solve_in_slices(&mut solver, 1, &[pivot]);
    assert_eq!(verdict, SatResult::Unsat);
}

#[test]
fn propagation_budget_interrupts() {
    let mut solver = Solver::new();
    encode_php(&mut solver, 7, 6);
    solver.set_control(SolveControl {
        max_propagations: Some(1),
        ..SolveControl::default()
    });
    assert_eq!(solver.solve(), SatResult::Interrupted);
    // Lifting the budget lets the same call run to the verdict.
    solver.set_control(SolveControl::unlimited());
    assert_eq!(solver.solve(), SatResult::Unsat);
}

#[test]
fn stop_callback_interrupts_and_is_polled() {
    let polls = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&polls);
    let mut solver = Solver::new();
    encode_php(&mut solver, 7, 6);
    solver.set_control(SolveControl::with_stop_callback(Arc::new(move || {
        counter.fetch_add(1, Ordering::Relaxed) >= 3
    })));
    assert_eq!(solver.solve(), SatResult::Interrupted);
    assert!(
        polls.load(Ordering::Relaxed) >= 3,
        "callback polled repeatedly"
    );

    // An always-true callback interrupts immediately, even on a fresh call.
    solver.set_control(SolveControl::with_stop_callback(Arc::new(|| true)));
    assert_eq!(solver.solve(), SatResult::Interrupted);

    solver.set_control(SolveControl::unlimited());
    assert_eq!(solver.solve(), SatResult::Unsat);
}

#[test]
fn stop_callback_interrupts_reference_engine() {
    let mut solver = reference::Solver::new();
    encode_php(&mut solver, 6, 5);
    solver.set_control(SolveControl::with_stop_callback(Arc::new(|| true)));
    assert_eq!(solver.solve(), SatResult::Interrupted);
    solver.set_control(SolveControl::unlimited());
    assert_eq!(solver.solve(), SatResult::Unsat);
}

#[test]
fn unlimited_control_reports_unlimited() {
    assert!(SolveControl::unlimited().is_unlimited());
    assert!(!SolveControl::with_conflict_budget(1).is_unlimited());
    assert!(!SolveControl::with_stop_callback(Arc::new(|| false)).is_unlimited());
    let debug = format!("{:?}", SolveControl::with_stop_callback(Arc::new(|| false)));
    assert!(
        debug.contains("callback"),
        "debug shows callback presence: {debug}"
    );
}
