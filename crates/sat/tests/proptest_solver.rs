//! Property-based tests: the CDCL solver agrees with brute-force enumeration
//! on random small CNF formulas, and its models actually satisfy the formula.

use proptest::prelude::*;

use sat::{Cnf, Lit, SatResult, Solver, Var};

/// Strategy producing a random CNF with up to `max_vars` variables and
/// `max_clauses` clauses of 1..=4 literals.
fn cnf_strategy(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    let literal = (1..=max_vars as i64).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    let clause = proptest::collection::vec(literal, 1..=4);
    proptest::collection::vec(clause, 1..=max_clauses)
}

fn build(clauses: &[Vec<i64>]) -> (Cnf, Solver, usize) {
    let num_vars = clauses
        .iter()
        .flatten()
        .map(|l| l.unsigned_abs() as usize)
        .max()
        .unwrap_or(0);
    let mut cnf = Cnf::new();
    cnf.ensure_vars(num_vars);
    let mut solver = Solver::new();
    for _ in 0..num_vars {
        solver.new_var();
    }
    for clause in clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&l| Lit::from_dimacs(l).expect("non-zero"))
            .collect();
        cnf.add_clause(&lits);
        solver.add_clause(&lits);
    }
    (cnf, solver, num_vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The CDCL verdict matches exhaustive enumeration.
    #[test]
    fn cdcl_agrees_with_brute_force(clauses in cnf_strategy(10, 30)) {
        let (cnf, mut solver, num_vars) = build(&clauses);
        let brute = cnf.brute_force();
        match solver.solve() {
            SatResult::Sat(model) => {
                prop_assert!(brute.is_some(), "solver said SAT, brute force said UNSAT");
                let assignment: Vec<bool> =
                    (0..num_vars).map(|i| model.value(Var::from_index(i))).collect();
                prop_assert!(cnf.evaluate(&assignment), "model does not satisfy the formula");
            }
            SatResult::Unsat => {
                prop_assert!(brute.is_none(), "solver said UNSAT, brute force found {brute:?}");
            }
            SatResult::Interrupted => {
                prop_assert!(false, "no SolveControl installed, solve cannot be interrupted");
            }
        }
    }

    /// Solving under assumptions never contradicts solving the formula alone,
    /// and an assumption-satisfying model honors the assumptions.
    #[test]
    fn assumptions_are_honored(clauses in cnf_strategy(8, 20), pick in 1..=8i64) {
        let (cnf, mut solver, num_vars) = build(&clauses);
        if num_vars == 0 {
            return Ok(());
        }
        let var = (pick.unsigned_abs() as usize - 1) % num_vars;
        let assumption = Lit::positive(Var::from_index(var));
        match solver.solve_with_assumptions(&[assumption]) {
            SatResult::Sat(model) => {
                prop_assert!(model.lit_value(assumption));
                let assignment: Vec<bool> =
                    (0..num_vars).map(|i| model.value(Var::from_index(i))).collect();
                prop_assert!(cnf.evaluate(&assignment));
            }
            SatResult::Unsat => {
                // The formula with the unit clause added must indeed be UNSAT.
                let mut strengthened = cnf.clone();
                strengthened.add_clause(&[assumption]);
                prop_assert!(strengthened.brute_force().is_none());
            }
            SatResult::Interrupted => {
                prop_assert!(false, "no SolveControl installed, solve cannot be interrupted");
            }
        }
        // The solver is still usable afterwards and agrees with brute force.
        let verdict_after = solver.solve().is_sat();
        prop_assert_eq!(verdict_after, cnf.brute_force().is_some());
    }

    /// DIMACS serialization round-trips.
    #[test]
    fn dimacs_round_trip(clauses in cnf_strategy(12, 24)) {
        let (cnf, _, _) = build(&clauses);
        let text = sat::dimacs::write(&cnf);
        let reparsed = sat::dimacs::parse(&text).expect("round-trip parses");
        prop_assert_eq!(reparsed.num_clauses(), cnf.num_clauses());
        prop_assert!(reparsed.num_vars() >= cnf.clauses().iter().flatten()
            .map(|l| l.var().index() + 1).max().unwrap_or(0));
    }
}
