//! Property-based test: the Tseitin encoding of a random combinational
//! netlist is consistent with direct gate-level evaluation under every
//! sampled input assignment.

use proptest::prelude::*;

use netlist::{GateKind, NetId, Netlist};
use sat::{
    miter,
    tseitin::{Bound, CircuitEncoder},
    SatResult, Solver,
};

/// A recipe for one random gate: kind index and input picks.
type GateRecipe = (u8, u8, u8, u8);

fn build_circuit(num_inputs: usize, recipes: &[GateRecipe]) -> Netlist {
    let kinds = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Mux,
    ];
    let mut nl = Netlist::new("random");
    let mut nets: Vec<NetId> = (0..num_inputs)
        .map(|i| nl.add_input(format!("in{i}")))
        .collect();
    for (g, &(kind_pick, a, b, c)) in recipes.iter().enumerate() {
        let kind = kinds[kind_pick as usize % kinds.len()];
        let pick = |x: u8| nets[x as usize % nets.len()];
        let inputs: Vec<NetId> = match kind {
            GateKind::Not => vec![pick(a)],
            GateKind::Mux => vec![pick(a), pick(b), pick(c)],
            _ => vec![pick(a), pick(b)],
        };
        let out = nl
            .add_gate(kind, &inputs, format!("g{g}"))
            .expect("arity is correct by construction");
        nets.push(out);
    }
    // Mark the last few nets as outputs.
    let num_outputs = nets.len().min(3);
    for &net in nets.iter().rev().take(num_outputs) {
        nl.mark_output(net).expect("distinct nets");
    }
    nl
}

fn evaluate_directly(netlist: &Netlist, inputs: &[bool]) -> Vec<bool> {
    let order = netlist::topo::gate_order(netlist).expect("acyclic");
    let mut values = vec![false; netlist.num_nets()];
    for (i, &net) in netlist.inputs().iter().enumerate() {
        values[net.index()] = inputs[i];
    }
    for gid in order {
        let gate = netlist.gate(gid);
        let ins: Vec<bool> = gate.inputs().iter().map(|&n| values[n.index()]).collect();
        values[gate.output().index()] = gate.kind().eval(&ins);
    }
    netlist
        .outputs()
        .iter()
        .map(|&o| values[o.index()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tseitin_encoding_matches_direct_evaluation(
        recipes in proptest::collection::vec(any::<GateRecipe>(), 1..24),
        input_bits in proptest::collection::vec(any::<bool>(), 4),
    ) {
        let netlist = build_circuit(input_bits.len(), &recipes);
        let expected = evaluate_directly(&netlist, &input_bits);

        let mut solver = Solver::new();
        let mut encoder = CircuitEncoder::new(&netlist).expect("combinational");
        encoder.encode(&mut solver).expect("encodes");
        miter::assert_values(&mut solver, &encoder.input_lits(), &input_bits);

        match solver.solve() {
            SatResult::Sat(model) => {
                let got: Vec<bool> = encoder
                    .output_bounds()
                    .iter()
                    .map(|b| match b {
                        Bound::Lit(l) => model.lit_value(*l),
                        Bound::Const(v) => *v,
                    })
                    .collect();
                prop_assert_eq!(got, expected);
            }
            SatResult::Unsat => prop_assert!(false, "constrained encoding must be satisfiable"),
            SatResult::Interrupted => {
                prop_assert!(false, "no SolveControl installed, solve cannot be interrupted");
            }
        }
    }

    /// Folding must not change the function: encode with the DIP inputs bound
    /// to constants (folded) and compare every output against direct
    /// evaluation of the same input assignment.
    #[test]
    fn const_bound_encoding_matches_direct_evaluation(
        recipes in proptest::collection::vec(any::<GateRecipe>(), 1..24),
        input_bits in proptest::collection::vec(any::<bool>(), 4),
    ) {
        let netlist = build_circuit(input_bits.len(), &recipes);
        let expected = evaluate_directly(&netlist, &input_bits);

        let mut solver = Solver::new();
        let mut encoder = CircuitEncoder::new(&netlist).expect("combinational");
        for (i, &input) in netlist.inputs().iter().enumerate() {
            encoder.bind_const(input, input_bits[i]);
        }
        let roots: Vec<NetId> = netlist.outputs().to_vec();
        encoder.encode_cone(&mut solver, &roots).expect("encodes");

        // With every input constant the whole circuit folds away: no solve
        // needed unless auxiliary structure survived, in which case any model
        // works (outputs are unconstrained variables never happen: they all
        // fold or are pinned by clauses over constants only).
        match solver.solve() {
            SatResult::Sat(model) => {
                let got: Vec<bool> = encoder
                    .output_bounds()
                    .iter()
                    .map(|b| match b {
                        Bound::Lit(l) => model.lit_value(*l),
                        Bound::Const(v) => *v,
                    })
                    .collect();
                prop_assert_eq!(got, expected);
            }
            SatResult::Unsat => prop_assert!(false, "const-bound encoding must be satisfiable"),
            SatResult::Interrupted => {
                prop_assert!(false, "no SolveControl installed, solve cannot be interrupted");
            }
        }
    }

    /// A miter of a circuit against itself can never find a difference —
    /// including when one copy is folded and the other is encoded verbatim
    /// (pre-PR shape), which pins the two encodings equivalent.
    #[test]
    fn self_miter_is_unsat(
        recipes in proptest::collection::vec(any::<GateRecipe>(), 1..16),
        fold_first in any::<bool>(),
    ) {
        let netlist = build_circuit(3, &recipes);
        let mut solver = Solver::new();
        let shared: Vec<sat::Lit> = (0..netlist.num_inputs())
            .map(|_| sat::Lit::positive(solver.new_var()))
            .collect();
        let mut enc1 = CircuitEncoder::new(&netlist).expect("combinational");
        let mut enc2 = CircuitEncoder::new(&netlist).expect("combinational");
        enc1.set_folding(fold_first);
        enc2.set_folding(false);
        for (i, &input) in netlist.inputs().iter().enumerate() {
            enc1.bind(input, shared[i]);
            enc2.bind(input, shared[i]);
        }
        enc1.encode(&mut solver).expect("encodes");
        enc2.encode(&mut solver).expect("encodes");
        let diff = miter::any_difference_bounds(
            &mut solver,
            &enc1.output_bounds(),
            &enc2.output_bounds(),
        );
        prop_assert_eq!(solver.solve_with_assumptions(&[diff]), SatResult::Unsat);
    }
}
