//! Differential fuzz suite for the arena solver.
//!
//! Random CNFs of at most 12 variables are solved three ways — the arena
//! [`Solver`], the retained pre-arena [`reference::Solver`] and brute-force
//! truth-table enumeration — and the verdicts must agree at every step of an
//! incremental session: initial solve, clause additions between solves, and
//! assumption queries. One copy of the arena solver runs with an aggressive
//! learnt limit so reduce-DB, clause deletion and arena garbage collection
//! fire constantly even on these tiny formulas; a reduce/minimization bug
//! that flips a SAT/UNSAT answer (or produces a non-model) fails here.

use proptest::prelude::*;

use sat::{reference, Cnf, Lit, RestartMode, SatEngine, SatResult, Solver, Var};

/// Strategy producing a random CNF as DIMACS-style integer clauses over
/// `max_vars` variables, with clause sizes 1..=5 (binaries are common, which
/// exercises the specialized binary watch lists).
fn cnf_strategy(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    let literal = (1..=max_vars as i64).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    let clause = proptest::collection::vec(literal, 1..=5);
    proptest::collection::vec(clause, 1..=max_clauses)
}

fn to_lits(clause: &[i64]) -> Vec<Lit> {
    clause
        .iter()
        .map(|&l| Lit::from_dimacs(l).expect("non-zero"))
        .collect()
}

fn num_vars(clauses: &[Vec<i64>]) -> usize {
    clauses
        .iter()
        .flatten()
        .map(|l| l.unsigned_abs() as usize)
        .max()
        .unwrap_or(0)
}

/// One engine under test plus the mirror [`Cnf`] used for brute-force
/// cross-checks.
struct Harness<E: SatEngine> {
    engine: E,
    cnf: Cnf,
}

impl<E: SatEngine> Harness<E> {
    fn new(vars: usize) -> Self {
        let mut engine = E::default();
        let mut cnf = Cnf::new();
        cnf.ensure_vars(vars);
        for _ in 0..vars {
            engine.new_var();
        }
        Harness { engine, cnf }
    }

    fn add(&mut self, clause: &[Lit]) {
        self.cnf.add_clause(clause);
        self.engine.add_clause(clause);
    }

    /// Solves and checks the verdict (and any model) against brute force.
    fn check_solve(&mut self) -> Result<bool, TestCaseError> {
        let brute = self.cnf.brute_force();
        match self.engine.solve() {
            SatResult::Sat(model) => {
                prop_assert!(brute.is_some(), "engine said SAT, brute force said UNSAT");
                let assignment: Vec<bool> = (0..self.cnf.num_vars())
                    .map(|i| model.value(Var::from_index(i)))
                    .collect();
                prop_assert!(
                    self.cnf.evaluate(&assignment),
                    "model does not satisfy the formula"
                );
                Ok(true)
            }
            SatResult::Unsat => {
                prop_assert!(
                    brute.is_none(),
                    "engine said UNSAT, brute force found {brute:?}"
                );
                Ok(false)
            }
            SatResult::Interrupted => {
                prop_assert!(
                    false,
                    "no SolveControl installed, solve cannot be interrupted"
                );
                unreachable!()
            }
        }
    }

    /// Solves under assumptions and checks against brute force over the
    /// assumption-strengthened formula.
    fn check_assumptions(&mut self, assumptions: &[Lit]) -> Result<bool, TestCaseError> {
        let mut strengthened = self.cnf.clone();
        for &a in assumptions {
            strengthened.add_clause(&[a]);
        }
        let brute = strengthened.brute_force();
        match self.engine.solve_with_assumptions(assumptions) {
            SatResult::Sat(model) => {
                prop_assert!(
                    brute.is_some(),
                    "engine said SAT under {assumptions:?}, brute force said UNSAT"
                );
                for &a in assumptions {
                    prop_assert!(model.lit_value(a), "assumption {a} not honored by model");
                }
                let assignment: Vec<bool> = (0..self.cnf.num_vars())
                    .map(|i| model.value(Var::from_index(i)))
                    .collect();
                prop_assert!(self.cnf.evaluate(&assignment));
                Ok(true)
            }
            SatResult::Unsat => {
                prop_assert!(
                    brute.is_none(),
                    "engine said UNSAT under {assumptions:?}, brute force found {brute:?}"
                );
                Ok(false)
            }
            SatResult::Interrupted => {
                prop_assert!(
                    false,
                    "no SolveControl installed, solve cannot be interrupted"
                );
                unreachable!()
            }
        }
    }
}

/// Drives one full incremental session (staged clause additions with solves
/// and assumption queries in between) on a fresh engine of type `E`.
fn drive_session<E: SatEngine>(
    clauses: &[Vec<i64>],
    vars: usize,
    assumption_picks: &[i64],
    aggressive_reduce: bool,
    configure: impl Fn(&mut E, bool),
) -> Result<(), TestCaseError> {
    let mut h = Harness::<E>::new(vars);
    configure(&mut h.engine, aggressive_reduce);

    // Stage the clauses in three chunks with a solve after each, exercising
    // incremental addition on top of learnt state.
    let chunk = clauses.len().div_ceil(3).max(1);
    for stage in clauses.chunks(chunk) {
        for clause in stage {
            h.add(&to_lits(clause));
        }
        h.check_solve()?;
        // Assumption queries between the incremental additions.
        for &pick in assumption_picks {
            let var = Var::from_index((pick.unsigned_abs() as usize - 1) % vars);
            let assumption = Lit::new(var, pick > 0);
            h.check_assumptions(&[assumption])?;
        }
    }
    // Final checks: a two-literal assumption set and one more plain solve
    // (the assumption query must not have poisoned the database).
    if vars >= 2 && assumption_picks.len() >= 2 {
        let a = Lit::new(
            Var::from_index((assumption_picks[0].unsigned_abs() as usize - 1) % vars),
            assumption_picks[0] > 0,
        );
        let b = Lit::new(
            Var::from_index((assumption_picks[1].unsigned_abs() as usize - 1) % vars),
            assumption_picks[1] > 0,
        );
        if a.var() != b.var() {
            h.check_assumptions(&[a, b])?;
        }
    }
    h.check_solve()?;
    Ok(())
}

/// Validates a failed-assumption core returned by [`SatEngine::failed_assumptions`]:
/// every core literal must come from the assumption set, and the formula
/// strengthened by the core alone must already be unsatisfiable (checked by
/// brute force). An empty core is only valid when the clause database itself
/// is unsatisfiable.
fn check_core(
    cnf: &Cnf,
    assumptions: &[Lit],
    core: &[Lit],
    label: &str,
) -> Result<(), TestCaseError> {
    for l in core {
        prop_assert!(
            assumptions.contains(l),
            "{label}: core literal {l} is not among the assumptions {assumptions:?}"
        );
    }
    let mut strengthened = cnf.clone();
    for &l in core {
        strengthened.add_clause(&[l]);
    }
    prop_assert!(
        strengthened.brute_force().is_none(),
        "{label}: core {core:?} does not refute the formula"
    );
    Ok(())
}

/// Drives the arena solver (in the given restart mode, with aggressive
/// reduce-DB churn) and the reference solver through one incremental session
/// with *rotating multi-literal assumption sets*: clauses land in stages, and
/// between stages both engines answer a rotating schedule of 1–3 literal
/// assumption queries. Verdicts must agree with each other and with brute
/// force; every UNSAT answer must come with a valid failed-assumption core.
fn drive_rotating_assumptions(
    clauses: &[Vec<i64>],
    vars: usize,
    picks: &[i64],
    mode: RestartMode,
) -> Result<(), TestCaseError> {
    let mut fast = Harness::<Solver>::new(vars);
    fast.engine.set_restart_mode(mode);
    fast.engine.set_learnt_limit(Some(1)); // constant reduce-DB + arena GC churn
    let mut reference = Harness::<reference::Solver>::new(vars);

    let as_lit = |pick: i64| {
        let var = Var::from_index((pick.unsigned_abs() as usize - 1) % vars);
        Lit::new(var, pick > 0)
    };

    let chunk = clauses.len().div_ceil(3).max(1);
    for (stage, chunk) in clauses.chunks(chunk).enumerate() {
        for clause in chunk {
            let lits = to_lits(clause);
            fast.add(&lits);
            reference.add(&lits);
        }
        // Rotate through assumption sets of size 1..=3, offset by the stage
        // index so consecutive stages query different (possibly conflicting,
        // possibly duplicated-variable) sets against a warm learnt database.
        for width in 1..=3usize.min(picks.len()) {
            let set: Vec<Lit> = (0..width)
                .map(|i| as_lit(picks[(stage + i) % picks.len()]))
                .collect();
            let fast_sat = fast.check_assumptions(&set)?;
            let reference_sat = reference.check_assumptions(&set)?;
            prop_assert_eq!(
                fast_sat,
                reference_sat,
                "verdict mismatch under rotating set {:?}",
                &set
            );
            if !fast_sat {
                check_core(&fast.cnf, &set, fast.engine.failed_assumptions(), "arena")?;
                check_core(
                    &reference.cnf,
                    &set,
                    reference.engine.failed_assumptions(),
                    "reference",
                )?;
            }
        }
        // The assumption queries must leave both databases usable.
        let fast_sat = fast.check_solve()?;
        let reference_sat = reference.check_solve()?;
        prop_assert_eq!(fast_sat, reference_sat, "plain-solve verdict mismatch");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The arena solver agrees with brute force through a full incremental
    /// session, with the default reduce-DB schedule and with an aggressive
    /// one (limit 1) that forces constant clause deletion and arena GC.
    #[test]
    fn arena_solver_matches_brute_force(
        clauses in cnf_strategy(12, 40),
        picks in proptest::collection::vec(1..=12i64, 3),
    ) {
        let vars = num_vars(&clauses);
        if vars == 0 {
            return Ok(());
        }
        for aggressive in [false, true] {
            drive_session::<Solver>(&clauses, vars, &picks, aggressive, |s, aggressive| {
                if aggressive {
                    s.set_learnt_limit(Some(1));
                }
            })?;
        }
    }

    /// The retained reference solver passes the identical session, pinning
    /// the old behavior that the arena engine is measured against.
    #[test]
    fn reference_solver_matches_brute_force(
        clauses in cnf_strategy(12, 40),
        picks in proptest::collection::vec(1..=12i64, 3),
    ) {
        let vars = num_vars(&clauses);
        if vars == 0 {
            return Ok(());
        }
        drive_session::<reference::Solver>(&clauses, vars, &picks, false, |_, _| {})?;
    }

    /// Both engines return the same verdict on the same formula (models may
    /// differ; satisfiability must not).
    #[test]
    fn arena_and_reference_verdicts_agree(
        clauses in cnf_strategy(12, 36),
        pick in 1..=12i64,
    ) {
        let vars = num_vars(&clauses);
        if vars == 0 {
            return Ok(());
        }
        let mut fast = Solver::new();
        fast.set_learnt_limit(Some(1)); // maximal reduce-DB churn
        let mut reference = reference::Solver::new();
        for _ in 0..vars {
            fast.new_var();
            reference.new_var();
        }
        for clause in &clauses {
            let lits = to_lits(clause);
            fast.add_clause(&lits);
            reference.add_clause(&lits);
        }
        prop_assert_eq!(fast.solve().is_sat(), reference.solve().is_sat());
        let var = Var::from_index((pick.unsigned_abs() as usize - 1) % vars);
        let assumption = Lit::new(var, pick > 0);
        prop_assert_eq!(
            fast.solve_with_assumptions(&[assumption]).is_sat(),
            reference.solve_with_assumptions(&[assumption]).is_sat()
        );
        prop_assert_eq!(fast.is_consistent(), reference.is_consistent());
    }

    /// Incremental-assumption workload: staged clause additions interleaved
    /// with rotating 1–3 literal assumption sets, under forced reduce-DB/GC
    /// churn, in BOTH restart modes. This is the fuzz-level pin for the
    /// cross-DIP incrementality contract: assumption queries that fail must
    /// name a refuting core, must not poison the learnt database, and the
    /// dynamic-LBD restart policy must never change a verdict.
    #[test]
    fn rotating_assumption_sets_agree_across_engines_and_restart_modes(
        clauses in cnf_strategy(12, 48),
        picks in proptest::collection::vec(
            prop_oneof![1..=12i64, -12..=-1i64],
            3..=6,
        ),
    ) {
        let vars = num_vars(&clauses);
        if vars == 0 {
            return Ok(());
        }
        for mode in [RestartMode::Luby, RestartMode::DynamicLbd] {
            drive_rotating_assumptions(&clauses, vars, &picks, mode)?;
        }
    }
}
