//! Thin synchronous client for the daemon protocol.
//!
//! One [`Client`] wraps one connection. Commands are blocking
//! request/reply; [`Client::watch`] additionally streams events until the
//! job reaches a terminal state. Because the daemon replays a job's
//! lifecycle events to late subscribers, watching jobs one after another
//! loses nothing — the campaign thin client submits a whole matrix and then
//! watches each cell in turn.

use std::fmt;
use std::io::{self, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use crate::job::JobSpec;
use crate::json::Json;
use crate::protocol::{read_line_capped, LineRead, LineReader, PROTOCOL_VERSION};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (daemon gone, connection reset, ...).
    Io(io::Error),
    /// The daemon sent something the client cannot interpret.
    Protocol(String),
    /// The daemon answered with a typed error line.
    Server {
        /// The stable error code (`queue-full`, `unknown-job`, ...).
        code: String,
        /// The human-readable message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { code, message } => write!(f, "daemon error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a running daemon.
pub struct Client {
    writer: UnixStream,
    reader: LineReader<BufReader<UnixStream>>,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

/// Event names that end a job's stream.
fn is_terminal_event(name: &str) -> bool {
    matches!(name, "done" | "failed" | "cancelled")
}

impl Client {
    /// Connects to the daemon at `socket`.
    ///
    /// # Errors
    ///
    /// Fails if the socket does not exist or refuses the connection.
    pub fn connect(socket: impl AsRef<Path>) -> io::Result<Client> {
        let stream = UnixStream::connect(socket)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            writer: stream,
            reader: LineReader::new(BufReader::new(read_half)),
        })
    }

    /// Connects, retrying until `timeout` elapses — for clients racing a
    /// daemon that is still binding its socket.
    ///
    /// # Errors
    ///
    /// Returns the last connect error once the deadline passes.
    pub fn connect_retry(socket: impl AsRef<Path>, timeout: Duration) -> io::Result<Client> {
        let socket = socket.as_ref();
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(socket) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
    }

    fn send(&mut self, line: &Json) -> Result<(), ClientError> {
        writeln!(self.writer, "{line}")?;
        Ok(())
    }

    /// Reads the next server line of any type.
    fn read_json(&mut self) -> Result<Json, ClientError> {
        loop {
            match self.reader.read_line()? {
                LineRead::Eof => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "daemon closed the connection",
                    )))
                }
                LineRead::Line(line) if line.trim().is_empty() => continue,
                LineRead::Line(line) => {
                    return Json::parse(&line)
                        .map_err(|e| ClientError::Protocol(format!("bad server line: {e}")))
                }
                LineRead::Oversized => {
                    return Err(ClientError::Protocol("oversized server line".into()))
                }
                LineRead::NotUtf8 => {
                    return Err(ClientError::Protocol("non-UTF-8 server line".into()))
                }
            }
        }
    }

    /// Reads until a `reply` arrives, skipping interleaved events; a typed
    /// `error` line becomes [`ClientError::Server`].
    fn read_reply(&mut self) -> Result<Json, ClientError> {
        loop {
            let line = self.read_json()?;
            match line.get("type").and_then(Json::as_str) {
                Some("reply") => return Ok(line),
                Some("error") => {
                    return Err(ClientError::Server {
                        code: line
                            .get("code")
                            .and_then(Json::as_str)
                            .unwrap_or("unknown")
                            .to_string(),
                        message: line
                            .get("message")
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_string(),
                    })
                }
                Some("event") => continue,
                _ => {
                    return Err(ClientError::Protocol(format!(
                        "untyped server line: {line}"
                    )))
                }
            }
        }
    }

    fn request(&mut self, line: &Json) -> Result<Json, ClientError> {
        self.send(line)?;
        self.read_reply()
    }

    /// Submits a job; returns its id.
    ///
    /// # Errors
    ///
    /// `queue-full` and `shutting-down` surface as [`ClientError::Server`].
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, ClientError> {
        let reply = self.request(&Json::obj([
            ("v", PROTOCOL_VERSION.into()),
            ("cmd", "submit".into()),
            ("spec", spec.to_json()),
        ]))?;
        reply
            .get("job")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("submit reply without job id".into()))
    }

    /// Fetches the status objects of every job the daemon knows.
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol failures.
    pub fn status(&mut self) -> Result<Vec<Json>, ClientError> {
        let reply = self.request(&Json::obj([
            ("v", PROTOCOL_VERSION.into()),
            ("cmd", "status".into()),
        ]))?;
        Ok(reply
            .get("jobs")
            .and_then(Json::as_array)
            .unwrap_or_default()
            .to_vec())
    }

    /// Fetches one job's status object.
    ///
    /// # Errors
    ///
    /// `unknown-job` surfaces as [`ClientError::Server`].
    pub fn status_job(&mut self, job: u64) -> Result<Json, ClientError> {
        let reply = self.request(&Json::obj([
            ("v", PROTOCOL_VERSION.into()),
            ("cmd", "status".into()),
            ("job", job.into()),
        ]))?;
        reply
            .get("status")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("status reply without status".into()))
    }

    /// Requests cancellation; returns the job's state after the request
    /// (`cancelled` immediately for queued jobs, `running` while a running
    /// attack winds down to its stop callback).
    ///
    /// # Errors
    ///
    /// `unknown-job` surfaces as [`ClientError::Server`].
    pub fn cancel(&mut self, job: u64) -> Result<String, ClientError> {
        let reply = self.request(&Json::obj([
            ("v", PROTOCOL_VERSION.into()),
            ("cmd", "cancel".into()),
            ("job", job.into()),
        ]))?;
        Ok(reply
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string())
    }

    /// Blocks until every job the daemon has accepted is terminal. `false`
    /// means the daemon started shutting down before the queue emptied.
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol failures.
    pub fn drain(&mut self) -> Result<bool, ClientError> {
        let reply = self.request(&Json::obj([
            ("v", PROTOCOL_VERSION.into()),
            ("cmd", "drain".into()),
        ]))?;
        Ok(reply.get("drained").and_then(Json::as_bool) == Some(true))
    }

    /// Asks the daemon to shut down (running jobs checkpoint and re-queue
    /// for the next instance).
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Json::obj([
            ("v", PROTOCOL_VERSION.into()),
            ("cmd", "shutdown".into()),
        ]))?;
        Ok(())
    }

    /// Subscribes to a job and streams its events to `on_event` (replayed
    /// lifecycle first, then live) until a terminal event arrives, which is
    /// returned.
    ///
    /// # Errors
    ///
    /// `unknown-job` surfaces as [`ClientError::Server`]; a daemon that dies
    /// mid-stream surfaces as [`ClientError::Io`].
    pub fn watch(
        &mut self,
        job: u64,
        mut on_event: impl FnMut(&Json),
    ) -> Result<Json, ClientError> {
        self.send(&Json::obj([
            ("v", PROTOCOL_VERSION.into()),
            ("cmd", "watch".into()),
            ("job", job.into()),
        ]))?;
        self.read_reply()?;
        loop {
            let line = self.read_json()?;
            if line.get("type").and_then(Json::as_str) != Some("event")
                || line.get("job").and_then(Json::as_u64) != Some(job)
            {
                continue;
            }
            on_event(&line);
            if let Some(name) = line.get("event").and_then(Json::as_str) {
                if is_terminal_event(name) {
                    return Ok(line);
                }
            }
        }
    }

    /// [`Client::watch`] without an observer: block until the job is
    /// terminal and return its final event.
    ///
    /// # Errors
    ///
    /// Same as [`Client::watch`].
    pub fn wait(&mut self, job: u64) -> Result<Json, ClientError> {
        self.watch(job, |_| {})
    }
}

/// Reads one server line from any buffered stream — helper for tests that
/// speak the protocol by hand.
///
/// # Errors
///
/// Propagates socket failures.
pub fn read_server_line<R: io::BufRead>(reader: &mut R) -> io::Result<Option<String>> {
    match read_line_capped(reader)? {
        LineRead::Line(line) => Ok(Some(line)),
        _ => Ok(None),
    }
}
