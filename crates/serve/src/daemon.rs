//! The attack daemon: accept loop, job registry, journal and worker pool.
//!
//! One [`run`] call owns everything: it binds the Unix socket, recovers the
//! job journal, re-enqueues unfinished jobs, spawns a scoped worker pool
//! ([`threadpool::spawn_workers`]) and serves connections until a `shutdown`
//! request. Durability is two-layered:
//!
//! * every job **state transition** is appended (fsynced) to
//!   `state_dir/journal.jsonl`, so a killed daemon knows on restart which
//!   jobs were queued, running, or already terminal;
//! * every running attack checkpoints to `state_dir/job-<id>.ckpt` via the
//!   attack layer's atomic checkpoint writer, so a recovered job *resumes*
//!   mid-attack (replaying its DIPs as constraints) instead of restarting.
//!
//! Cancellation and shutdown both ride the attack's cooperative stop
//! callback: the solver returns at its next budget poll, the attack writes a
//! final checkpoint, and the worker classifies the interruption (client
//! cancel → `cancelled`, daemon shutdown → journaled back to `queued` so the
//! next daemon instance picks the job up where it stopped).

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use attacks::{
    AttackError, AttackProgress, AttackStatus, LearntDbOutcome, RestoreReport, SatAttack,
    SatAttackOutcome,
};
use netlist::Netlist;
use threadpool::{spawn_workers, JobQueue, PushError};
use trilock::TriLockConfig;

use crate::job::{JobSpec, JobState};
use crate::json::Json;
use crate::protocol::{
    event_line, parse_request, reply_line, LineRead, LineReader, Request, RequestError,
};

/// How a daemon instance is wired to the filesystem and sized.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Path of the Unix-domain socket to listen on (an existing stale socket
    /// file is removed first).
    pub socket: PathBuf,
    /// Directory holding the job journal and per-job attack checkpoints.
    /// Restarting a daemon on the same directory resumes its queue.
    pub state_dir: PathBuf,
    /// Worker threads executing jobs (minimum 1).
    pub workers: usize,
    /// Bounded queue depth; submits beyond it are rejected with the
    /// `queue-full` error instead of buffering without limit.
    pub queue_capacity: usize,
}

impl DaemonConfig {
    /// A daemon on `socket` persisting to `state_dir`, with 4 workers and a
    /// queue of 64.
    pub fn new(socket: impl Into<PathBuf>, state_dir: impl Into<PathBuf>) -> Self {
        DaemonConfig {
            socket: socket.into(),
            state_dir: state_dir.into(),
            workers: 4,
            queue_capacity: 64,
        }
    }
}

/// Wire name of an attack status (shared with the campaign JSONL rows).
pub fn attack_status_name(status: &AttackStatus) -> &'static str {
    match status {
        AttackStatus::KeyFound(_) => "key-found",
        AttackStatus::DipBudgetExhausted => "dip-budget-exhausted",
        AttackStatus::UnrollBudgetExhausted => "unroll-budget-exhausted",
        AttackStatus::TimedOut => "timed-out",
    }
}

/// Renders an attack outcome as the protocol's result object — the same
/// field names the campaign JSONL rows use (`status`, `key`, `dips`,
/// `unroll_depth`, `elapsed_ms`, `seconds_per_dip`, `conflicts`,
/// `propagations`, `learnt_live`).
pub fn outcome_json(outcome: &SatAttackOutcome) -> Json {
    let stats = &outcome.solver_stats;
    let mut out = Json::obj([
        ("status", attack_status_name(&outcome.status).into()),
        ("dips", outcome.dips.into()),
        ("unroll_depth", outcome.unroll_depth.into()),
        ("elapsed_ms", (outcome.elapsed.as_millis() as u64).into()),
        ("seconds_per_dip", outcome.seconds_per_dip().into()),
        ("conflicts", stats.conflicts.into()),
        ("propagations", stats.propagations.into()),
        ("learnt_live", stats.learned.into()),
    ]);
    if let AttackStatus::KeyFound(key) = &outcome.status {
        out.push("key", key.to_string().into());
    }
    out
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    cancel: Arc<AtomicBool>,
    /// Replay buffer of lifecycle events (accepted/started/checkpointed/
    /// terminal) for late `watch` subscribers. Progress events fan out live
    /// only — at one event per DIP they would grow without bound.
    events: Vec<String>,
    watchers: Vec<Arc<Mutex<UnixStream>>>,
    result: Option<Json>,
    error: Option<String>,
}

impl JobEntry {
    fn new(spec: JobSpec) -> Self {
        JobEntry {
            spec,
            state: JobState::Queued,
            cancel: Arc::new(AtomicBool::new(false)),
            events: Vec::new(),
            watchers: Vec::new(),
            result: None,
            error: None,
        }
    }

    fn json(&self, id: u64) -> Json {
        let mut out = Json::obj([
            ("job", id.into()),
            ("kind", self.spec.kind().into()),
            ("state", self.state.name().into()),
        ]);
        out.push("spec", self.spec.to_json());
        if let Some(result) = &self.result {
            out.push("result", result.clone());
        }
        if let Some(error) = &self.error {
            out.push("error", error.as_str().into());
        }
        out
    }
}

/// The terminal event of a job recovered from the journal already in a
/// terminal state, rebuilt from its recorded state, result and error — the
/// same shape the live `done`/`failed`/`cancelled` events have.
fn recovered_terminal_event(job: u64, entry: &JobEntry) -> Json {
    match entry.state {
        JobState::Done => {
            let mut line = event_line(job, "done", []);
            if let Some(Json::Obj(members)) = &entry.result {
                for (key, value) in members {
                    line.push_owned(key.clone(), value.clone());
                }
            }
            line
        }
        JobState::Failed => {
            let error = entry
                .error
                .clone()
                .unwrap_or_else(|| "unknown failure".into());
            event_line(job, "failed", [("error", error.into())])
        }
        _ => event_line(job, "cancelled", [("while", "recovered".into())]),
    }
}

struct Inner {
    jobs: BTreeMap<u64, JobEntry>,
    next_id: u64,
}

/// Watcher writes deferred out of the registry critical section: event text
/// plus a snapshot of the streams subscribed at emission time. All entries
/// of one `FanOut` belong to the same job.
#[derive(Default)]
struct FanOut {
    writes: Vec<(String, Vec<Arc<Mutex<UnixStream>>>)>,
}

/// Shared daemon state. Lock order is `inner` → journal file. Watcher
/// streams are never written while `inner` is held: [`Registry::emit`] only
/// snapshots the subscribers into a [`FanOut`], and the socket writes happen
/// in [`Registry::flush`] after the guard is released — so one stalled or
/// hostile watcher (full socket buffer, 5 s write timeout per line) can
/// delay at most the thread emitting that job's events, never submits,
/// status, cancel, or the other workers.
struct Registry {
    inner: Mutex<Inner>,
    changed: Condvar,
    journal: Mutex<File>,
    state_dir: PathBuf,
    shutdown: AtomicBool,
}

impl Registry {
    /// Rebuilds the registry from the journal. Returns the ids of jobs whose
    /// last recorded state was non-terminal (`queued` or `running` — i.e. the
    /// previous daemon died before finishing them), in submission order.
    fn recover(config: &DaemonConfig) -> io::Result<(Registry, Vec<u64>)> {
        let journal_path = config.state_dir.join("journal.jsonl");
        let mut jobs: BTreeMap<u64, JobEntry> = BTreeMap::new();
        let mut next_id = 1u64;
        if let Ok(text) = fs::read_to_string(&journal_path) {
            for line in text.lines() {
                // Torn trailing lines (crash mid-append) and any other
                // garbage are skipped; the affected transition is replayed
                // by the attack checkpoint instead.
                let Ok(value) = Json::parse(line) else {
                    continue;
                };
                let Some(id) = value.get("job").and_then(Json::as_u64) else {
                    continue;
                };
                let Some(state) = value
                    .get("state")
                    .and_then(Json::as_str)
                    .and_then(JobState::from_name)
                else {
                    continue;
                };
                next_id = next_id.max(id + 1);
                if let Some(entry) = jobs.get_mut(&id) {
                    entry.state = state;
                    entry.result = value.get("result").cloned();
                    entry.error = value
                        .get("error")
                        .and_then(Json::as_str)
                        .map(str::to_string);
                } else {
                    // The first record of a job must carry its spec; without
                    // one the job cannot be re-run, so it is dropped.
                    let Some(spec) = value
                        .get("spec")
                        .and_then(|spec| JobSpec::from_json(spec).ok())
                    else {
                        continue;
                    };
                    let mut entry = JobEntry::new(spec);
                    entry.state = state;
                    jobs.insert(id, entry);
                }
            }
        }
        // A crash between a checkpoint's temp-file write and its atomic
        // rename strands a `.tmp` next to the real checkpoint. The previous
        // checkpoint (if any) is still intact, so the stranded file is pure
        // garbage — sweep it with the same lifecycle GC that drops dead
        // checkpoints below.
        if let Ok(dir) = fs::read_dir(&config.state_dir) {
            for entry in dir.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("job-") && name.ends_with(".tmp") {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        let mut pending = Vec::new();
        for (&id, entry) in &mut jobs {
            if entry.state.is_terminal() {
                // Terminal jobs never resume (ids are not reused), so any
                // checkpoint left behind is dead weight. Events are not
                // journaled either, so the terminal event is synthesized
                // from the recovered state — without one, a late `watch`
                // on the job would replay nothing and never end.
                let _ = fs::remove_file(config.state_dir.join(format!("job-{id}.ckpt")));
                entry
                    .events
                    .push(recovered_terminal_event(id, entry).to_string());
            } else {
                entry.state = JobState::Queued;
                pending.push(id);
            }
        }
        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)?;
        Ok((
            Registry {
                inner: Mutex::new(Inner { jobs, next_id }),
                changed: Condvar::new(),
                journal: Mutex::new(journal),
                state_dir: config.state_dir.clone(),
                shutdown: AtomicBool::new(false),
            },
            pending,
        ))
    }

    fn checkpoint_path(&self, job: u64) -> PathBuf {
        self.state_dir.join(format!("job-{job}.ckpt"))
    }

    /// Appends one fsynced record to the journal. A failing journal is
    /// reported but does not abort the job — the daemon degrades to
    /// non-durable operation rather than dropping work.
    fn journal_append(&self, record: &Json) {
        let mut file = self.journal.lock().expect("journal lock");
        let result = writeln!(file, "{record}")
            .and_then(|()| file.flush())
            .and_then(|()| file.sync_all());
        if let Err(e) = result {
            eprintln!("trilock-serve: journal write failed: {e}");
        }
    }

    fn journal_state(&self, job: u64, state: JobState, extra: Option<(&'static str, Json)>) {
        let mut record = Json::obj([("v", 1u64.into()), ("job", job.into())]);
        record.push("state", state.name().into());
        if let Some((key, value)) = extra {
            record.push(key, value);
        }
        self.journal_append(&record);
    }

    /// Records a lifecycle event for replay and snapshots the job's current
    /// watchers into `fan`; the socket writes happen in [`Registry::flush`],
    /// after the registry lock is released.
    fn emit(&self, inner: &mut Inner, job: u64, line: Json, replay: bool, fan: &mut FanOut) {
        let text = line.to_string();
        let Some(entry) = inner.jobs.get_mut(&job) else {
            return;
        };
        if replay {
            entry.events.push(text.clone());
        }
        if !entry.watchers.is_empty() {
            fan.writes.push((text, entry.watchers.clone()));
        }
    }

    /// Performs the deferred watcher writes. Must be called *without* the
    /// registry lock held; watchers whose stream errors are unsubscribed.
    fn flush(&self, job: u64, fan: FanOut) {
        if fan.writes.is_empty() {
            return;
        }
        let mut dead: Vec<Arc<Mutex<UnixStream>>> = Vec::new();
        for (text, watchers) in &fan.writes {
            for stream in watchers {
                if dead.iter().any(|gone| Arc::ptr_eq(gone, stream)) {
                    continue;
                }
                if !write_text_line(stream, text) {
                    dead.push(Arc::clone(stream));
                }
            }
        }
        if dead.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(entry) = inner.jobs.get_mut(&job) {
            entry
                .watchers
                .retain(|stream| !dead.iter().any(|gone| Arc::ptr_eq(gone, stream)));
        }
    }

    /// Progress callback target: renders the per-DIP event and fans it out.
    fn emit_progress(&self, job: u64, progress: &AttackProgress) {
        let mut fan = FanOut::default();
        {
            let mut inner = self.inner.lock().expect("registry lock");
            let line = event_line(
                job,
                "progress",
                [
                    ("dips", progress.dips.into()),
                    ("depth", progress.depth.into()),
                    ("elapsed_ms", (progress.elapsed.as_millis() as u64).into()),
                    ("conflicts", progress.stats.conflicts.into()),
                    ("propagations", progress.stats.propagations.into()),
                    ("learnt_live", progress.stats.learned.into()),
                ],
            );
            self.emit(&mut inner, job, line, false, &mut fan);
            if progress.checkpointed {
                let line = event_line(job, "checkpointed", [("dips", progress.dips.into())]);
                self.emit(&mut inner, job, line, true, &mut fan);
            }
        }
        self.flush(job, fan);
    }

    /// Restore callback target: reports what a resumed job got back from its
    /// checkpoint — how many DIPs were replayed and whether the saved
    /// learnt-clause state was used or dropped. Replayed to late watchers,
    /// like the other lifecycle events.
    fn emit_restore(&self, job: u64, report: &RestoreReport) {
        let mut fan = FanOut::default();
        {
            let mut inner = self.inner.lock().expect("registry lock");
            let mut line = event_line(
                job,
                "restored",
                [("dips", report.dips.into()), ("depth", report.depth.into())],
            );
            match &report.learnt_db {
                LearntDbOutcome::Absent => line.push("learnt", "absent".into()),
                LearntDbOutcome::Restored { clauses, literals } => {
                    line.push("learnt", "restored".into());
                    line.push("clauses", (*clauses).into());
                    line.push("literals", (*literals).into());
                }
                LearntDbOutcome::Degraded { issue } => {
                    line.push("learnt", "degraded".into());
                    line.push("reason", issue.to_string().into());
                }
            }
            self.emit(&mut inner, job, line, true, &mut fan);
        }
        self.flush(job, fan);
    }

    /// Accepts a job if the queue has room: the entry is registered, the
    /// id enqueued and the `queued` record journaled in one critical
    /// section, so workers can never observe an id without its entry and a
    /// rejected submit leaves no trace.
    fn submit(&self, spec: JobSpec, queue: &JobQueue<u64>) -> Result<u64, RequestError> {
        if self.shutdown.load(Ordering::Relaxed) {
            return Err(RequestError::ShuttingDown);
        }
        let mut inner = self.inner.lock().expect("registry lock");
        let id = inner.next_id;
        inner.jobs.insert(id, JobEntry::new(spec.clone()));
        match queue.try_push(id) {
            Ok(()) => {}
            Err(PushError::Full(_)) => {
                inner.jobs.remove(&id);
                return Err(RequestError::QueueFull {
                    capacity: queue.capacity(),
                });
            }
            Err(PushError::Closed(_)) => {
                inner.jobs.remove(&id);
                return Err(RequestError::ShuttingDown);
            }
        }
        inner.next_id = id + 1;
        let mut record = Json::obj([("v", 1u64.into()), ("job", id.into())]);
        record.push("state", JobState::Queued.name().into());
        record.push("spec", spec.to_json());
        self.journal_append(&record);
        let mut fan = FanOut::default();
        let accepted = event_line(id, "accepted", [("kind", spec.kind().into())]);
        self.emit(&mut inner, id, accepted, true, &mut fan);
        drop(inner);
        self.flush(id, fan);
        self.changed.notify_all();
        Ok(id)
    }

    /// Cancels a job. Queued jobs become terminal immediately (the worker
    /// skips them); running jobs get their stop flag tripped and reach
    /// `cancelled` once the solver polls it and the attack checkpoints out.
    fn cancel(&self, job: u64) -> Result<JobState, RequestError> {
        let mut fan = FanOut::default();
        let mut inner = self.inner.lock().expect("registry lock");
        let Some(entry) = inner.jobs.get_mut(&job) else {
            return Err(RequestError::UnknownJob { job });
        };
        entry.cancel.store(true, Ordering::Relaxed);
        let state = match entry.state {
            JobState::Queued => {
                entry.state = JobState::Cancelled;
                // A recovered-then-cancelled job may still have a
                // checkpoint; cancelled is terminal, so drop it.
                let _ = fs::remove_file(self.checkpoint_path(job));
                self.journal_state(job, JobState::Cancelled, None);
                let line = event_line(job, "cancelled", [("while", "queued".into())]);
                self.emit(&mut inner, job, line, true, &mut fan);
                JobState::Cancelled
            }
            state => state,
        };
        drop(inner);
        self.flush(job, fan);
        self.changed.notify_all();
        Ok(state)
    }
}

/// Writes one newline-terminated text line to a shared stream; `false`
/// (drop me) on any error.
fn write_text_line(stream: &Arc<Mutex<UnixStream>>, text: &str) -> bool {
    let mut stream = stream.lock().expect("stream lock");
    writeln!(stream, "{text}").is_ok()
}

/// Writes one JSON line to a shared stream.
fn write_json_line(stream: &Arc<Mutex<UnixStream>>, line: &Json) -> bool {
    write_text_line(stream, &line.to_string())
}

/// What one executed job produced.
enum Finish {
    /// Terminal outcome with a result object.
    Done(Json),
    /// The cooperative stop tripped mid-attack; a checkpoint is on disk.
    Interrupted(Json),
    /// The job failed with an error message.
    Error(String),
}

fn read_circuit(path: &Path) -> Result<Netlist, String> {
    trilock_io::read_circuit(path).map_err(|e| format!("cannot read `{}`: {e}", path.display()))
}

/// Runs (or resumes) a checkpointed attack with the daemon's observer
/// callbacks installed.
#[allow(clippy::too_many_arguments)] // the attack inputs do not regroup naturally
fn run_attack(
    registry: &Arc<Registry>,
    job: u64,
    original: &Netlist,
    locked: &Netlist,
    kappa: usize,
    seed: u64,
    params: &crate::job::AttackParams,
    cancel: &Arc<AtomicBool>,
) -> Result<SatAttackOutcome, String> {
    let attack = SatAttack::new(original, locked, kappa).map_err(|e| e.to_string())?;
    let mut config = params.to_config();
    let observer = Arc::clone(registry);
    config.progress = Some(Arc::new(move |p: &AttackProgress| {
        observer.emit_progress(job, p);
    }));
    let stop_registry = Arc::clone(registry);
    let stop_cancel = Arc::clone(cancel);
    config.stop = Some(Arc::new(move || {
        stop_cancel.load(Ordering::Relaxed) || stop_registry.shutdown.load(Ordering::Relaxed)
    }));
    let restore_observer = Arc::clone(registry);
    config.on_restore = Some(Arc::new(move |report: &RestoreReport| {
        restore_observer.emit_restore(job, report);
    }));
    let checkpoint = registry.checkpoint_path(job);
    if checkpoint.exists() {
        match attack.resume_from_path(&config, &checkpoint) {
            Ok(outcome) => return Ok(outcome),
            Err(AttackError::Checkpoint(e)) => {
                // Torn or incompatible checkpoint: discard it and restart
                // the job from scratch rather than wedging the queue.
                eprintln!("trilock-serve: job {job}: checkpoint unusable ({e}), restarting fresh");
                let _ = fs::remove_file(&checkpoint);
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    attack
        .run_checkpointed(&config, &mut rng, &checkpoint)
        .map_err(|e| e.to_string())
}

/// Classifies an attack outcome: a `TimedOut` caused by the job's stop flag
/// is an interruption (cancel/shutdown), anything else is terminal.
fn classify(
    registry: &Registry,
    cancel: &AtomicBool,
    outcome: SatAttackOutcome,
    result: Json,
) -> Finish {
    let stopped = cancel.load(Ordering::Relaxed) || registry.shutdown.load(Ordering::Relaxed);
    if matches!(outcome.status, AttackStatus::TimedOut) && stopped {
        Finish::Interrupted(result)
    } else {
        Finish::Done(result)
    }
}

/// Executes one job spec to a [`Finish`].
fn run_spec(
    registry: &Arc<Registry>,
    job: u64,
    spec: &JobSpec,
    cancel: &Arc<AtomicBool>,
) -> Finish {
    match spec {
        JobSpec::SatAttack {
            original,
            locked,
            kappa,
            seed,
            attack,
        } => {
            let original = match read_circuit(original) {
                Ok(n) => n,
                Err(e) => return Finish::Error(e),
            };
            let locked = match read_circuit(locked) {
                Ok(n) => n,
                Err(e) => return Finish::Error(e),
            };
            match run_attack(
                registry, job, &original, &locked, *kappa, *seed, attack, cancel,
            ) {
                Ok(outcome) => {
                    let result = outcome_json(&outcome);
                    classify(registry, cancel, outcome, result)
                }
                Err(e) => Finish::Error(e),
            }
        }
        JobSpec::CampaignCell {
            circuit,
            kappa_s,
            kappa_f,
            seed,
            alpha,
            attack,
        } => {
            let original = match read_circuit(circuit) {
                Ok(n) => n,
                Err(e) => return Finish::Error(e),
            };
            let lock_config = TriLockConfig::new(*kappa_s, *kappa_f).with_alpha(*alpha);
            let mut lock_rng = StdRng::seed_from_u64(*seed);
            let locked = match trilock::lock(&original, &lock_config, &mut lock_rng) {
                Ok(result) => result.locked,
                Err(e) => return Finish::Error(format!("lock failed: {e}")),
            };
            // Same RNG split as `trilock-cli campaign`: locking uses `seed`,
            // the attack uses `seed + 1`, so daemon cells and standalone
            // campaign cells recover identical keys.
            match run_attack(
                registry,
                job,
                &original,
                &locked.netlist,
                locked.kappa(),
                seed.wrapping_add(1),
                attack,
                cancel,
            ) {
                Ok(outcome) => {
                    let mut result = Json::obj([
                        ("cell", format!("ks{kappa_s}_kf{kappa_f}_s{seed}").into()),
                        ("kappa_s", (*kappa_s).into()),
                        ("kappa_f", (*kappa_f).into()),
                        ("seed", (*seed).into()),
                    ]);
                    if let Json::Obj(members) = outcome_json(&outcome) {
                        for (key, value) in members {
                            result.push_owned(key, value);
                        }
                    }
                    classify(registry, cancel, outcome, result)
                }
                Err(e) => Finish::Error(e),
            }
        }
        JobSpec::Fc {
            original,
            locked,
            kappa,
            cycles,
            samples,
            seed,
        } => {
            let original = match read_circuit(original) {
                Ok(n) => n,
                Err(e) => return Finish::Error(e),
            };
            let locked = match read_circuit(locked) {
                Ok(n) => n,
                Err(e) => return Finish::Error(e),
            };
            let mut rng = StdRng::seed_from_u64(*seed);
            match sim::fc::estimate_fc(&original, &locked, *kappa, *cycles, *samples, &mut rng) {
                Ok(estimate) => Finish::Done(Json::obj([
                    ("fc", estimate.fc.into()),
                    ("samples", estimate.samples.into()),
                    ("mismatches", estimate.mismatches.into()),
                ])),
                Err(e) => Finish::Error(e.to_string()),
            }
        }
        JobSpec::Lock {
            input,
            output,
            kappa_s,
            kappa_f,
            alpha,
            seed,
            key_out,
        } => {
            let original = match read_circuit(input) {
                Ok(n) => n,
                Err(e) => return Finish::Error(e),
            };
            let config = TriLockConfig::new(*kappa_s, *kappa_f).with_alpha(*alpha);
            let mut rng = StdRng::seed_from_u64(*seed);
            let result = match trilock::lock(&original, &config, &mut rng) {
                Ok(result) => result,
                Err(e) => return Finish::Error(format!("lock failed: {e}")),
            };
            if let Err(e) = trilock_io::write_circuit_auto(output, &result.locked.netlist) {
                return Finish::Error(format!("cannot write `{}`: {e}", output.display()));
            }
            if let Some(key_path) = key_out {
                let mut text = String::new();
                for cycle in result.locked.key.cycles() {
                    for &bit in cycle {
                        text.push(if bit { '1' } else { '0' });
                    }
                    text.push('\n');
                }
                if let Err(e) = fs::write(key_path, text) {
                    return Finish::Error(format!(
                        "cannot write key to `{}`: {e}",
                        key_path.display()
                    ));
                }
            }
            Finish::Done(Json::obj([
                ("output", output.to_string_lossy().into_owned().into()),
                ("kappa", config.kappa().into()),
                ("key", result.locked.key.to_string().into()),
                ("added_dffs", result.locked.summary.added_dffs.into()),
                ("added_gates", result.locked.summary.added_gates.into()),
            ]))
        }
    }
}

/// Worker body: claim the job, execute it with panic isolation, record the
/// finish. Jobs popped after shutdown are left `queued` for the next daemon
/// instance; jobs cancelled while queued are skipped.
fn execute(registry: &Arc<Registry>, job: u64) {
    let mut fan = FanOut::default();
    let claimed = {
        let mut inner = registry.inner.lock().expect("registry lock");
        let Some(entry) = inner.jobs.get_mut(&job) else {
            return;
        };
        if entry.state.is_terminal() {
            return;
        }
        if registry.shutdown.load(Ordering::Relaxed) {
            return;
        }
        entry.state = JobState::Running;
        let spec = entry.spec.clone();
        let cancel = Arc::clone(&entry.cancel);
        registry.journal_state(job, JobState::Running, None);
        let resumed = registry.checkpoint_path(job).exists();
        let line = event_line(
            job,
            "started",
            [("kind", spec.kind().into()), ("resumed", resumed.into())],
        );
        registry.emit(&mut inner, job, line, true, &mut fan);
        (spec, cancel)
    };
    registry.flush(job, std::mem::take(&mut fan));
    let (spec, cancel) = claimed;
    let finish = catch_unwind(AssertUnwindSafe(|| run_spec(registry, job, &spec, &cancel)))
        .unwrap_or_else(|payload| {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Finish::Error(format!("job panicked: {message}"))
        });

    let mut inner = registry.inner.lock().expect("registry lock");
    match finish {
        Finish::Done(result) => {
            // Done is terminal — even for timed-out outcomes — and job ids
            // are never reused, so the checkpoint is dead weight.
            let _ = fs::remove_file(registry.checkpoint_path(job));
            if let Some(entry) = inner.jobs.get_mut(&job) {
                entry.state = JobState::Done;
                entry.result = Some(result.clone());
            }
            registry.journal_state(job, JobState::Done, Some(("result", result.clone())));
            let mut line = event_line(job, "done", []);
            if let Json::Obj(members) = result {
                for (key, value) in members {
                    line.push_owned(key, value);
                }
            }
            registry.emit(&mut inner, job, line, true, &mut fan);
        }
        Finish::Interrupted(partial) => {
            if cancel.load(Ordering::Relaxed) {
                let _ = fs::remove_file(registry.checkpoint_path(job));
                if let Some(entry) = inner.jobs.get_mut(&job) {
                    entry.state = JobState::Cancelled;
                    entry.result = Some(partial.clone());
                }
                registry.journal_state(job, JobState::Cancelled, None);
                let mut line = event_line(job, "cancelled", [("while", "running".into())]);
                if let Some(dips) = partial.get("dips") {
                    line.push("dips", dips.clone());
                }
                registry.emit(&mut inner, job, line, true, &mut fan);
            } else {
                // Shutdown: the final checkpoint is on disk; journal the job
                // back to `queued` so a restarted daemon resumes it.
                if let Some(entry) = inner.jobs.get_mut(&job) {
                    entry.state = JobState::Queued;
                }
                registry.journal_state(job, JobState::Queued, None);
                let mut line = event_line(job, "checkpointed", [("for", "restart".into())]);
                if let Some(dips) = partial.get("dips") {
                    line.push("dips", dips.clone());
                }
                registry.emit(&mut inner, job, line, true, &mut fan);
            }
        }
        Finish::Error(message) => {
            let _ = fs::remove_file(registry.checkpoint_path(job));
            if let Some(entry) = inner.jobs.get_mut(&job) {
                entry.state = JobState::Failed;
                entry.error = Some(message.clone());
            }
            registry.journal_state(
                job,
                JobState::Failed,
                Some(("error", message.as_str().into())),
            );
            let line = event_line(job, "failed", [("error", message.into())]);
            registry.emit(&mut inner, job, line, true, &mut fan);
        }
    }
    drop(inner);
    registry.flush(job, fan);
    registry.changed.notify_all();
}

/// Serves one client connection until EOF, a fatal write error, or daemon
/// shutdown. Reads poll with a timeout so shutdown is observed promptly;
/// the [`LineReader`] keeps half-received lines across polls.
fn handle_connection(stream: UnixStream, registry: &Arc<Registry>, queue: &JobQueue<u64>) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .is_err()
    {
        return;
    }
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(stream));
    let mut reader = LineReader::new(BufReader::new(read_half));
    loop {
        let line = match reader.read_line() {
            Ok(LineRead::Eof) => return,
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::Oversized) => {
                if !write_json_line(&writer, &RequestError::Oversized.to_line()) {
                    return;
                }
                continue;
            }
            Ok(LineRead::NotUtf8) => {
                let err = RequestError::Malformed {
                    reason: "line is not valid UTF-8".into(),
                };
                if !write_json_line(&writer, &err.to_line()) {
                    return;
                }
                continue;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if registry.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let keep_going = match parse_request(&line) {
            Err(err) => write_json_line(&writer, &err.to_line()),
            Ok(request) => handle_request(request, registry, queue, &writer),
        };
        if !keep_going {
            return;
        }
    }
}

/// Dispatches one parsed request; `false` ends the connection.
fn handle_request(
    request: Request,
    registry: &Arc<Registry>,
    queue: &JobQueue<u64>,
    writer: &Arc<Mutex<UnixStream>>,
) -> bool {
    match request {
        Request::Submit(spec) => match registry.submit(spec, queue) {
            Ok(job) => write_json_line(writer, &reply_line([("job", job.into())])),
            Err(err) => write_json_line(writer, &err.to_line()),
        },
        Request::Status(None) => {
            let jobs: Vec<Json> = {
                let inner = registry.inner.lock().expect("registry lock");
                inner
                    .jobs
                    .iter()
                    .map(|(&id, entry)| entry.json(id))
                    .collect()
            };
            write_json_line(writer, &reply_line([("jobs", Json::Arr(jobs))]))
        }
        Request::Status(Some(job)) => {
            let reply = {
                let inner = registry.inner.lock().expect("registry lock");
                inner.jobs.get(&job).map(|entry| entry.json(job))
            };
            match reply {
                Some(json) => write_json_line(writer, &reply_line([("status", json)])),
                None => write_json_line(writer, &RequestError::UnknownJob { job }.to_line()),
            }
        }
        Request::Watch(job) => {
            // The reply and the lifecycle replay are written *outside* the
            // registry lock, so a watch client that stops reading stalls
            // only its own connection. Each pass snapshots the events still
            // unsent; the stream goes live (or, for terminal jobs, ends)
            // only once a pass finds nothing left to send, so no event is
            // missed or duplicated.
            let mut sent = 0usize;
            let mut replied = false;
            loop {
                let (reply, pending) = {
                    let mut inner = registry.inner.lock().expect("registry lock");
                    let Some(entry) = inner.jobs.get_mut(&job) else {
                        drop(inner);
                        return write_json_line(
                            writer,
                            &RequestError::UnknownJob { job }.to_line(),
                        );
                    };
                    let reply = (!replied).then(|| {
                        reply_line([
                            ("watching", job.into()),
                            ("state", entry.state.name().into()),
                        ])
                    });
                    let pending = entry.events[sent..].to_vec();
                    if reply.is_none() && pending.is_empty() {
                        if !entry.state.is_terminal() {
                            entry.watchers.push(Arc::clone(writer));
                        }
                        return true;
                    }
                    (reply, pending)
                };
                if let Some(reply) = reply {
                    replied = true;
                    if !write_json_line(writer, &reply) {
                        return false;
                    }
                }
                for event in &pending {
                    if !write_text_line(writer, event) {
                        return false;
                    }
                }
                sent += pending.len();
            }
        }
        Request::Cancel(job) => match registry.cancel(job) {
            Ok(state) => write_json_line(
                writer,
                &reply_line([("job", job.into()), ("state", state.name().into())]),
            ),
            Err(err) => write_json_line(writer, &err.to_line()),
        },
        Request::Drain => {
            let mut inner = registry.inner.lock().expect("registry lock");
            loop {
                let all_terminal = inner.jobs.values().all(|entry| entry.state.is_terminal());
                if all_terminal {
                    let jobs = inner.jobs.len();
                    drop(inner);
                    return write_json_line(
                        writer,
                        &reply_line([("drained", true.into()), ("jobs", jobs.into())]),
                    );
                }
                if registry.shutdown.load(Ordering::Relaxed) {
                    drop(inner);
                    return write_json_line(writer, &reply_line([("drained", false.into())]));
                }
                let (guard, _timeout) = registry
                    .changed
                    .wait_timeout(inner, Duration::from_millis(200))
                    .expect("registry lock");
                inner = guard;
            }
        }
        Request::Shutdown => {
            registry.shutdown.store(true, Ordering::Relaxed);
            registry.changed.notify_all();
            write_json_line(writer, &reply_line([("shutdown", true.into())]))
        }
    }
}

/// Runs the daemon until a `shutdown` request: binds the socket, recovers
/// and re-enqueues journaled jobs, spawns the worker pool and accepts
/// connections. Returns once every worker and connection thread has exited;
/// running attacks are interrupted at shutdown, checkpoint to disk, and are
/// journaled back to `queued` for the next instance.
///
/// # Errors
///
/// Fails if the state directory, journal or socket cannot be set up.
pub fn run(config: &DaemonConfig) -> io::Result<()> {
    fs::create_dir_all(&config.state_dir)?;
    let (registry, pending) = Registry::recover(config)?;
    let registry = Arc::new(registry);
    // The queue must at least hold every recovered job plus the configured
    // headroom for new submissions.
    let queue: JobQueue<u64> = JobQueue::new(config.queue_capacity.max(pending.len()).max(1));
    for &job in &pending {
        queue.try_push(job).expect("recovered jobs fit the queue");
    }
    if config.socket.exists() {
        fs::remove_file(&config.socket)?;
    }
    let listener = UnixListener::bind(&config.socket)?;
    listener.set_nonblocking(true)?;
    let workers = config.workers.max(1);
    eprintln!(
        "trilock-serve: listening on {} ({} worker(s), queue capacity {}, {} job(s) recovered)",
        config.socket.display(),
        workers,
        queue.capacity(),
        pending.len()
    );
    let worker_registry = Arc::clone(&registry);
    let worker = move |_index: usize, job: u64| execute(&worker_registry, job);
    thread::scope(|scope| {
        spawn_workers(scope, &queue, workers, &worker);
        let queue = &queue;
        let registry = &registry;
        while !registry.shutdown.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    scope.spawn(move || handle_connection(stream, registry, queue));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    eprintln!("trilock-serve: accept failed: {e}");
                    thread::sleep(Duration::from_millis(20));
                }
            }
        }
        // Shutdown: stop feeding workers. Queued-but-unexecuted jobs stay
        // `queued` in the journal (workers skip them once the flag is set),
        // and running attacks observe the stop callback and checkpoint out.
        queue.close();
        registry.changed.notify_all();
    });
    let _ = fs::remove_file(&config.socket);
    eprintln!("trilock-serve: shut down");
    Ok(())
}

/// Handle to a daemon running on a background thread of this process (see
/// [`spawn`]).
pub struct DaemonHandle {
    thread: thread::JoinHandle<io::Result<()>>,
}

impl DaemonHandle {
    /// Waits for the daemon to exit — it only does so after a `shutdown`
    /// request — and propagates its I/O result.
    ///
    /// # Errors
    ///
    /// Returns the daemon's setup error, if it failed to bind or recover.
    ///
    /// # Panics
    ///
    /// Panics if the daemon thread itself panicked.
    pub fn join(self) -> io::Result<()> {
        self.thread.join().expect("daemon thread panicked")
    }
}

/// Runs [`run`] on a background thread, for embedding a daemon in another
/// process (tests, benchmarks, combined client/server tools). Ask it to exit
/// with a `shutdown` request over the socket, then [`DaemonHandle::join`].
pub fn spawn(config: DaemonConfig) -> DaemonHandle {
    DaemonHandle {
        thread: thread::spawn(move || run(&config)),
    }
}
