//! Job specifications accepted by the daemon.
//!
//! A job is one unit of Table-I-style work: locking a circuit, running the
//! SAT attack against a locked design, estimating functional corruptibility,
//! or a whole campaign cell (lock + attack for one κs × κf × seed point).
//! Specs are plain data — file paths and parameters — so they serialize
//! losslessly to JSON for both the wire protocol and the daemon's crash-safe
//! job journal.

use std::path::PathBuf;
use std::time::Duration;

use attacks::SatAttackConfig;

use crate::json::Json;
use crate::protocol::RequestError;

/// Attack-budget parameters shared by the `sat-attack` and `campaign-cell`
/// job kinds. Every field has the standalone CLI's default; absent JSON
/// members keep the default, so specs stay small.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackParams {
    /// Initial unrolling depth `b`.
    pub initial_unroll: usize,
    /// Maximum unrolling depth.
    pub max_unroll: usize,
    /// Maximum DIP count across all depths.
    pub max_dips: u64,
    /// Random validation sequences per candidate key.
    pub verify_sequences: usize,
    /// Length of each validation sequence.
    pub verify_cycles: usize,
    /// Wall-clock budget in seconds (`None` = unbounded).
    pub time_limit_secs: Option<f64>,
    /// Checkpoint cadence in DIPs.
    pub checkpoint_every: u64,
    /// Progress-event cadence in DIPs.
    pub progress_every: u64,
}

impl Default for AttackParams {
    fn default() -> Self {
        let defaults = SatAttackConfig::default();
        AttackParams {
            initial_unroll: defaults.initial_unroll,
            max_unroll: defaults.max_unroll,
            max_dips: defaults.max_dips,
            verify_sequences: defaults.verify_sequences,
            verify_cycles: defaults.verify_cycles,
            time_limit_secs: None,
            checkpoint_every: defaults.checkpoint_every,
            progress_every: 1,
        }
    }
}

impl AttackParams {
    /// Materializes the parameters as an attack configuration (observer
    /// callbacks are installed separately by the executor).
    pub fn to_config(&self) -> SatAttackConfig {
        SatAttackConfig {
            initial_unroll: self.initial_unroll,
            max_unroll: self.max_unroll,
            max_dips: self.max_dips,
            verify_sequences: self.verify_sequences,
            verify_cycles: self.verify_cycles,
            time_limit: self
                .time_limit_secs
                .filter(|&s| s > 0.0)
                .map(Duration::from_secs_f64),
            checkpoint_every: self.checkpoint_every,
            progress_every: self.progress_every,
            ..SatAttackConfig::default()
        }
    }

    fn to_json_members(&self, out: &mut Json) {
        out.push("initial_unroll", self.initial_unroll.into());
        out.push("max_unroll", self.max_unroll.into());
        out.push("max_dips", self.max_dips.into());
        out.push("verify_sequences", self.verify_sequences.into());
        out.push("verify_cycles", self.verify_cycles.into());
        if let Some(secs) = self.time_limit_secs {
            out.push("time_limit_secs", secs.into());
        }
        out.push("checkpoint_every", self.checkpoint_every.into());
        out.push("progress_every", self.progress_every.into());
    }

    fn from_json(value: &Json) -> Result<AttackParams, RequestError> {
        let defaults = AttackParams::default();
        let time_limit_secs = match value.get("time_limit_secs") {
            None => None,
            Some(member) => {
                let secs = member
                    .as_f64()
                    .filter(|s| s.is_finite() && *s >= 0.0)
                    .ok_or_else(|| bad_field("time_limit_secs", "a finite number >= 0"))?;
                (secs > 0.0).then_some(secs)
            }
        };
        Ok(AttackParams {
            initial_unroll: usize_field(value, "initial_unroll", defaults.initial_unroll)?,
            max_unroll: usize_field(value, "max_unroll", defaults.max_unroll)?,
            max_dips: u64_field(value, "max_dips", defaults.max_dips)?,
            verify_sequences: usize_field(value, "verify_sequences", defaults.verify_sequences)?,
            verify_cycles: usize_field(value, "verify_cycles", defaults.verify_cycles)?,
            time_limit_secs,
            checkpoint_every: u64_field(value, "checkpoint_every", defaults.checkpoint_every)?,
            progress_every: u64_field(value, "progress_every", defaults.progress_every)?,
        })
    }
}

/// One unit of daemon work.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Run the SAT attack: `original` plays the oracle against `locked`.
    SatAttack {
        /// Path of the oracle circuit.
        original: PathBuf,
        /// Path of the locked circuit under attack.
        locked: PathBuf,
        /// Key cycle length known to the attacker.
        kappa: usize,
        /// Seed of the validation RNG.
        seed: u64,
        /// Attack budgets.
        attack: AttackParams,
    },
    /// One Table I cell: lock `circuit` with (κs, κf, seed), then attack it.
    CampaignCell {
        /// Path of the original circuit.
        circuit: PathBuf,
        /// Resilience cycles of the lock.
        kappa_s: usize,
        /// Corruptibility cycles of the lock.
        kappa_f: usize,
        /// Seed of both the locking and attack RNGs (attack uses `seed + 1`,
        /// matching `trilock-cli campaign`).
        seed: u64,
        /// Probability of choosing XOR over XNOR per key gate.
        alpha: f64,
        /// Attack budgets.
        attack: AttackParams,
    },
    /// Estimate functional corruptibility of `locked` against `original`.
    Fc {
        /// Path of the original circuit.
        original: PathBuf,
        /// Path of the locked circuit.
        locked: PathBuf,
        /// Key cycle count for random-key FC.
        kappa: usize,
        /// Functional cycles per sample.
        cycles: usize,
        /// Number of (input, key) samples.
        samples: usize,
        /// Sampling seed.
        seed: u64,
    },
    /// Lock `input` with the TriLock flow and write the result to `output`.
    Lock {
        /// Path of the original circuit.
        input: PathBuf,
        /// Destination path of the locked circuit.
        output: PathBuf,
        /// Resilience cycles.
        kappa_s: usize,
        /// Corruptibility cycles.
        kappa_f: usize,
        /// Probability of choosing XOR over XNOR per key gate.
        alpha: f64,
        /// Locking seed.
        seed: u64,
        /// Optional destination of the key file.
        key_out: Option<PathBuf>,
    },
}

fn bad_field(name: &str, expected: &str) -> RequestError {
    RequestError::BadJob {
        reason: format!("field `{name}` must be {expected}"),
    }
}

fn usize_field(value: &Json, name: &str, default: usize) -> Result<usize, RequestError> {
    match value.get(name) {
        None => Ok(default),
        Some(member) => member
            .as_usize()
            .ok_or_else(|| bad_field(name, "an unsigned integer")),
    }
}

fn u64_field(value: &Json, name: &str, default: u64) -> Result<u64, RequestError> {
    match value.get(name) {
        None => Ok(default),
        Some(member) => member
            .as_u64()
            .ok_or_else(|| bad_field(name, "an unsigned integer")),
    }
}

fn required_usize(value: &Json, name: &str) -> Result<usize, RequestError> {
    value
        .get(name)
        .ok_or_else(|| bad_field(name, "present"))?
        .as_usize()
        .ok_or_else(|| bad_field(name, "an unsigned integer"))
}

fn required_path(value: &Json, name: &str) -> Result<PathBuf, RequestError> {
    let text = value
        .get(name)
        .ok_or_else(|| bad_field(name, "present"))?
        .as_str()
        .ok_or_else(|| bad_field(name, "a path string"))?;
    if text.is_empty() {
        return Err(bad_field(name, "a non-empty path"));
    }
    Ok(PathBuf::from(text))
}

fn f64_field(value: &Json, name: &str, default: f64) -> Result<f64, RequestError> {
    match value.get(name) {
        None => Ok(default),
        Some(member) => member
            .as_f64()
            .filter(|a| a.is_finite())
            .ok_or_else(|| bad_field(name, "a finite number")),
    }
}

fn path_str(path: &std::path::Path) -> Json {
    Json::Str(path.to_string_lossy().into_owned())
}

impl JobSpec {
    /// The job kind's wire name.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::SatAttack { .. } => "sat-attack",
            JobSpec::CampaignCell { .. } => "campaign-cell",
            JobSpec::Fc { .. } => "fc",
            JobSpec::Lock { .. } => "lock",
        }
    }

    /// Serializes the spec for the wire protocol and the job journal.
    pub fn to_json(&self) -> Json {
        let mut out = Json::obj([("kind", self.kind().into())]);
        match self {
            JobSpec::SatAttack {
                original,
                locked,
                kappa,
                seed,
                attack,
            } => {
                out.push("original", path_str(original));
                out.push("locked", path_str(locked));
                out.push("kappa", (*kappa).into());
                out.push("seed", (*seed).into());
                attack.to_json_members(&mut out);
            }
            JobSpec::CampaignCell {
                circuit,
                kappa_s,
                kappa_f,
                seed,
                alpha,
                attack,
            } => {
                out.push("circuit", path_str(circuit));
                out.push("kappa_s", (*kappa_s).into());
                out.push("kappa_f", (*kappa_f).into());
                out.push("seed", (*seed).into());
                out.push("alpha", (*alpha).into());
                attack.to_json_members(&mut out);
            }
            JobSpec::Fc {
                original,
                locked,
                kappa,
                cycles,
                samples,
                seed,
            } => {
                out.push("original", path_str(original));
                out.push("locked", path_str(locked));
                out.push("kappa", (*kappa).into());
                out.push("cycles", (*cycles).into());
                out.push("samples", (*samples).into());
                out.push("seed", (*seed).into());
            }
            JobSpec::Lock {
                input,
                output,
                kappa_s,
                kappa_f,
                alpha,
                seed,
                key_out,
            } => {
                out.push("input", path_str(input));
                out.push("output", path_str(output));
                out.push("kappa_s", (*kappa_s).into());
                out.push("kappa_f", (*kappa_f).into());
                out.push("alpha", (*alpha).into());
                out.push("seed", (*seed).into());
                if let Some(key_out) = key_out {
                    out.push("key_out", path_str(key_out));
                }
            }
        }
        out
    }

    /// Parses a spec from its JSON form, validating kinds, types and ranges.
    /// Every defect maps to a typed [`RequestError::BadJob`].
    pub fn from_json(value: &Json) -> Result<JobSpec, RequestError> {
        let kind = value
            .get("kind")
            .ok_or_else(|| bad_field("kind", "present"))?
            .as_str()
            .ok_or_else(|| bad_field("kind", "a string"))?;
        match kind {
            "sat-attack" => Ok(JobSpec::SatAttack {
                original: required_path(value, "original")?,
                locked: required_path(value, "locked")?,
                kappa: required_usize(value, "kappa")?,
                seed: u64_field(value, "seed", 1)?,
                attack: AttackParams::from_json(value)?,
            }),
            "campaign-cell" => Ok(JobSpec::CampaignCell {
                circuit: required_path(value, "circuit")?,
                kappa_s: required_usize(value, "kappa_s")?,
                kappa_f: required_usize(value, "kappa_f")?,
                seed: u64_field(value, "seed", 1)?,
                alpha: f64_field(value, "alpha", 0.6)?,
                attack: AttackParams::from_json(value)?,
            }),
            "fc" => Ok(JobSpec::Fc {
                original: required_path(value, "original")?,
                locked: required_path(value, "locked")?,
                kappa: required_usize(value, "kappa")?,
                cycles: usize_field(value, "cycles", 8)?,
                samples: usize_field(value, "samples", 800)?,
                seed: u64_field(value, "seed", 1)?,
            }),
            "lock" => Ok(JobSpec::Lock {
                input: required_path(value, "input")?,
                output: required_path(value, "output")?,
                kappa_s: usize_field(value, "kappa_s", 2)?,
                kappa_f: usize_field(value, "kappa_f", 1)?,
                alpha: f64_field(value, "alpha", 0.6)?,
                seed: u64_field(value, "seed", 1)?,
                key_out: match value.get("key_out") {
                    None => None,
                    Some(member) => Some(PathBuf::from(
                        member
                            .as_str()
                            .ok_or_else(|| bad_field("key_out", "a path string"))?,
                    )),
                },
            }),
            other => Err(RequestError::BadJob {
                reason: format!(
                    "unknown job kind `{other}` (expected sat-attack, campaign-cell, fc or lock)"
                ),
            }),
        }
    }
}

/// Lifecycle states of a daemon job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting in the queue.
    Queued,
    /// Picked up by a worker.
    Running,
    /// Finished with an attack outcome (key found, resisted, or timed out).
    Done,
    /// Aborted with an error or a panic.
    Failed,
    /// Cancelled by a client (possibly mid-run, via the stop callback).
    Cancelled,
}

impl JobState {
    /// The state's wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// `true` for states no further transition can leave.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Parses a state's wire name (journal recovery).
    pub fn from_name(name: &str) -> Option<JobState> {
        Some(match name {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(spec: JobSpec) {
        let json = spec.to_json();
        let text = json.to_string();
        let parsed = JobSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, spec, "wire form: {text}");
    }

    #[test]
    fn specs_round_trip_through_json() {
        round_trip(JobSpec::SatAttack {
            original: "a.bench".into(),
            locked: "b.bench".into(),
            kappa: 2,
            seed: 9,
            attack: AttackParams {
                max_unroll: 4,
                time_limit_secs: Some(1.5),
                checkpoint_every: 1,
                ..AttackParams::default()
            },
        });
        round_trip(JobSpec::CampaignCell {
            circuit: "c.bench".into(),
            kappa_s: 2,
            kappa_f: 1,
            seed: 7,
            alpha: 0.6,
            attack: AttackParams::default(),
        });
        round_trip(JobSpec::Fc {
            original: "a.bench".into(),
            locked: "b.bench".into(),
            kappa: 3,
            cycles: 8,
            samples: 100,
            seed: 2,
        });
        round_trip(JobSpec::Lock {
            input: "in.bench".into(),
            output: "out.v".into(),
            kappa_s: 1,
            kappa_f: 2,
            alpha: 0.5,
            seed: 11,
            key_out: Some("key.txt".into()),
        });
    }

    #[test]
    fn missing_and_mistyped_fields_are_typed_errors() {
        for bad in [
            r#"{"kind":"sat-attack"}"#,
            r#"{"kind":"sat-attack","original":"a","locked":"b","kappa":"two"}"#,
            r#"{"kind":"sat-attack","original":"","locked":"b","kappa":1}"#,
            r#"{"kind":"campaign-cell","circuit":"c","kappa_s":1}"#,
            r#"{"kind":"campaign-cell","circuit":"c","kappa_s":1,"kappa_f":1,"alpha":"x"}"#,
            r#"{"kind":"fc","original":"a","locked":"b"}"#,
            r#"{"kind":"warp-core","original":"a"}"#,
            r#"{"original":"a"}"#,
            r#"{"kind":"sat-attack","original":"a","locked":"b","kappa":1,"max_dips":-3}"#,
            r#"{"kind":"sat-attack","original":"a","locked":"b","kappa":1,"time_limit_secs":-1}"#,
        ] {
            let value = Json::parse(bad).unwrap();
            assert!(
                matches!(JobSpec::from_json(&value), Err(RequestError::BadJob { .. })),
                "accepted: {bad}"
            );
        }
    }

    #[test]
    fn attack_params_default_and_materialize() {
        let params = AttackParams {
            time_limit_secs: Some(2.0),
            ..AttackParams::default()
        };
        let config = params.to_config();
        assert_eq!(config.time_limit, Some(Duration::from_secs_f64(2.0)));
        assert_eq!(config.max_dips, SatAttackConfig::default().max_dips);
        let unlimited = AttackParams::default().to_config();
        assert_eq!(unlimited.time_limit, None);
    }

    #[test]
    fn job_states_round_trip_and_classify() {
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::from_name(state.name()), Some(state));
        }
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert_eq!(JobState::from_name("zombie"), None);
    }
}
