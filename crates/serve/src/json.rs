//! A minimal, hardened JSON value model for the daemon protocol.
//!
//! The build environment has no crates.io access (no `serde`), so the
//! line-delimited protocol is built on this hand-rolled codec. It is written
//! for hostile input: recursion depth is bounded, every malformation maps to
//! a typed [`JsonError`] with a byte offset, and parsing never panics — the
//! protocol robustness suite byte-mutates real request lines against it.
//!
//! Numbers are stored as `f64`; the protocol only carries small integers
//! (job ids, counters) and seconds, all exactly representable.

use std::error::Error;
use std::fmt;

/// Maximum nesting depth accepted by the parser. Protocol messages are at
/// most a few levels deep; the bound exists so a hostile `[[[[…` line fails
/// typed instead of overflowing the stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Where and why a JSON text failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input position.
    pub offset: usize,
    /// Human-readable description of the problem.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.reason)
    }
}

impl Error for JsonError {}

impl Json {
    /// Parses a complete JSON document; trailing whitespace is allowed,
    /// trailing garbage is not.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer. `None` for
    /// non-numbers, negatives, fractions, and values above 2^53 (where `f64`
    /// stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() != 0.0 || !(0.0..=9_007_199_254_740_992.0).contains(&n) {
            return None;
        }
        Some(n as u64)
    }

    /// [`Json::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs (helper for emit sites).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Appends a member to an object; panics on non-objects (builder misuse,
    /// not a data path).
    pub fn push(&mut self, key: &str, value: Json) {
        self.push_owned(key.to_string(), value);
    }

    /// [`Json::push`] taking an already-owned key (moving members between
    /// objects without re-allocating the key).
    pub fn push_owned(&mut self, key: String, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key, value)),
            _ => unreachable!("Json::push on a non-object"),
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

/// Compact single-line rendering — the wire format of the protocol.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    item.fmt(f)?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    value.fmt(f)?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(escape) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar. The input is a &str, so the
                    // bytes are valid UTF-8 by construction.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = chunk.chars().next().ok_or_else(|| self.err("empty char"))?;
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("non-ASCII \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("non-hex \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let high = self.hex4()?;
        if (0xd800..0xdc00).contains(&high) {
            // Surrogate pair: a second \uXXXX must follow.
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(self.err("lone high surrogate"));
            }
            self.pos += 2;
            let low = self.hex4()?;
            if !(0xdc00..0xe000).contains(&low) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((high - 0xd800) << 10) + (low - 0xdc00);
            char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xdc00..0xe000).contains(&high) {
            Err(self.err("lone low surrogate"))
        } else {
            char::from_u32(high).ok_or_else(|| self.err("invalid code point"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-ASCII number"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("invalid number `{text}`")))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures_and_accessors() {
        let value =
            Json::parse(r#"{"v":1,"cmd":"submit","job":{"kind":"fc","seeds":[1,2]}}"#).unwrap();
        assert_eq!(value.get("v").unwrap().as_u64(), Some(1));
        assert_eq!(value.get("cmd").unwrap().as_str(), Some("submit"));
        let job = value.get("job").unwrap();
        assert_eq!(job.get("kind").unwrap().as_str(), Some("fc"));
        assert_eq!(job.get("seeds").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(value.get("missing"), None);
    }

    #[test]
    fn escapes_round_trip() {
        let original = Json::Obj(vec![(
            "text".into(),
            Json::Str("line\nquote\"back\\slash\ttab\u{0001}é—𝄞".into()),
        )]);
        let rendered = original.to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), original);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9\ud834\udd1e""#).unwrap(),
            Json::Str("Aé𝄞".into())
        );
        assert!(Json::parse(r#""\ud834""#).is_err());
        assert!(Json::parse(r#""\udd1e""#).is_err());
        assert!(Json::parse(r#""\ud834\u0041""#).is_err());
    }

    #[test]
    fn malformations_are_typed_errors() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"",
            "{\"a\":}",
            "tru",
            "nul",
            "\"abc",
            "01x",
            "--1",
            "{\"a\":1,}",
            "[1]]",
            "1 2",
            "\"\\q\"",
            "{\"a\" 1}",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.reason.is_empty(), "no reason for {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.reason.contains("deep"), "{err}");
    }

    #[test]
    fn integers_render_without_exponents() {
        assert_eq!(Json::from(1_234_567_890u64).to_string(), "1234567890");
        assert_eq!(Json::from(0.5f64).to_string(), "0.5");
        assert_eq!(Json::Null.to_string(), "null");
    }

    #[test]
    fn u64_accessor_rejects_non_integers() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1e300).as_u64(), None);
        assert_eq!(Json::Str("1".into()).as_u64(), None);
        assert_eq!(Json::Num(77.0).as_u64(), Some(77));
    }
}
