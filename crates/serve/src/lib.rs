//! `trilock-serve` — a long-running attack daemon for TriLock experiments.
//!
//! The Table I experiment matrix is hours of SAT-attack work. Running it as
//! one foreground process couples the experiment's lifetime to one terminal
//! and serializes every cell. This crate turns the attack runtime into a
//! small job service instead:
//!
//! * **Daemon** ([`daemon::run`], `trilock-cli serve`) — listens on a
//!   Unix-domain socket, accepts `lock` / `sat-attack` / `fc` /
//!   `campaign-cell` jobs into a *bounded* queue (explicit `queue-full`
//!   backpressure), and executes them on a scoped worker pool
//!   (`threadpool` crate, `std::thread::scope`-based — no detached threads,
//!   every worker is joined on exit).
//! * **Protocol** ([`protocol`]) — versioned, line-delimited JSON. Requests
//!   are `{"v":1,"cmd":...}`; server lines are tagged `reply`, `error` (with
//!   stable machine-readable codes) or `event`. Subscribed clients stream a
//!   job's lifecycle: `accepted`, `started`, per-DIP `progress` (DIP count,
//!   cumulative conflicts/propagations, live learnt clauses, elapsed time),
//!   `checkpointed`, and one of `done` / `failed` / `cancelled`. The parser
//!   is total — malformed, truncated, oversized and version-foreign input
//!   come back as typed errors, never a panic or a wedged connection.
//! * **Durability** — every job state transition is fsynced to a journal,
//!   and running attacks checkpoint through the attack layer's atomic
//!   [`attacks::AttackCheckpoint`] writer. Kill the daemon (`SIGKILL`
//!   included) and restart it on the same state directory: terminal jobs
//!   keep their results, interrupted jobs *resume mid-attack* from their
//!   checkpoint, and recovered cells finish with byte-identical keys.
//! * **Cancellation** ([`Client::cancel`]) — rides the SAT solver's
//!   cooperative stop callback: the solver returns at its next budget poll
//!   and the attack writes a final checkpoint before the job is marked
//!   `cancelled`.
//! * **Client** ([`Client`]) — a thin synchronous wrapper
//!   (`submit`/`status`/`watch`/`cancel`/`drain`/`shutdown`) used by
//!   `trilock-cli` to keep `sat-attack --socket` and `campaign --socket`
//!   as thin clients of a shared daemon.
//!
//! Everything is `std`-only: the socket layer is `std::os::unix::net`, the
//! JSON codec is the hand-rolled hardened parser in [`json`], and the worker
//! pool is the in-tree `threadpool` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod job;
pub mod json;
pub mod protocol;

pub use client::{Client, ClientError};
pub use daemon::{attack_status_name, outcome_json, run, spawn, DaemonConfig, DaemonHandle};
pub use job::{AttackParams, JobSpec, JobState};
pub use json::{Json, JsonError};
pub use protocol::{
    parse_request, LineRead, LineReader, Request, RequestError, MAX_LINE_BYTES, PROTOCOL_VERSION,
};
