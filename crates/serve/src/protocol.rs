//! The daemon's line-delimited JSON wire protocol.
//!
//! Every message — request or server line — is one `\n`-terminated JSON
//! object carrying `"v": 1`. Requests name a command in `"cmd"`; server
//! lines are tagged `"type": "reply" | "error" | "event"`. The parser is
//! total: malformed, truncated, oversized and version-foreign input all map
//! to typed [`RequestError`]s with stable `code` strings, never a panic and
//! never a wedged connection (oversized lines are discarded up to the next
//! newline so the stream stays framed).

use std::io::{self, BufRead};

use crate::job::JobSpec;
use crate::json::Json;

/// Version stamped on every protocol line. Lines carrying any other value
/// are rejected with the `version` error code so a future v2 daemon can
/// change semantics without silently confusing old clients.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on one protocol line, newline included. Larger lines are
/// rejected (`oversized`) and skipped rather than buffered without bound.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a job; replies with its id or a `queue-full` error.
    Submit(JobSpec),
    /// Report one job (`Some`) or every known job (`None`).
    Status(Option<u64>),
    /// Subscribe to a job's event stream; past events replay first.
    Watch(u64),
    /// Cancel a queued or running job.
    Cancel(u64),
    /// Block until every accepted job reaches a terminal state.
    Drain,
    /// Stop accepting work and exit once running jobs checkpoint out.
    Shutdown,
}

/// Everything that can go wrong with a request, each with a stable wire code.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// The line exceeded [`MAX_LINE_BYTES`].
    Oversized,
    /// The line was not a JSON object (syntax error, wrong top-level type,
    /// invalid UTF-8, or a missing/`non`-string `cmd`).
    Malformed {
        /// Human-readable defect description.
        reason: String,
    },
    /// The line's `v` member was absent or not [`PROTOCOL_VERSION`].
    Version {
        /// The version the client sent, if it sent a number at all.
        got: Option<u64>,
    },
    /// The `cmd` member named no known command.
    UnknownCommand {
        /// The unrecognized command name.
        name: String,
    },
    /// A `submit` carried an invalid job spec.
    BadJob {
        /// Which field was wrong and what was expected.
        reason: String,
    },
    /// The bounded job queue is full; resubmit after a `drain` or later.
    QueueFull {
        /// The queue's capacity, so clients can size their backoff.
        capacity: usize,
    },
    /// The request referenced a job id the daemon has never seen.
    UnknownJob {
        /// The offending job id.
        job: u64,
    },
    /// The daemon is shutting down and accepts no further work.
    ShuttingDown,
}

impl RequestError {
    /// The stable machine-readable error code.
    pub fn code(&self) -> &'static str {
        match self {
            RequestError::Oversized => "oversized",
            RequestError::Malformed { .. } => "malformed",
            RequestError::Version { .. } => "version",
            RequestError::UnknownCommand { .. } => "unknown-command",
            RequestError::BadJob { .. } => "bad-job",
            RequestError::QueueFull { .. } => "queue-full",
            RequestError::UnknownJob { .. } => "unknown-job",
            RequestError::ShuttingDown => "shutting-down",
        }
    }

    /// A human-readable description for the error line's `message` member.
    pub fn message(&self) -> String {
        match self {
            RequestError::Oversized => {
                format!("line exceeds {MAX_LINE_BYTES} bytes")
            }
            RequestError::Malformed { reason } => reason.clone(),
            RequestError::Version { got: Some(got) } => {
                format!(
                    "protocol version {got} not supported (this daemon speaks {PROTOCOL_VERSION})"
                )
            }
            RequestError::Version { got: None } => {
                format!("missing protocol version (send \"v\": {PROTOCOL_VERSION})")
            }
            RequestError::UnknownCommand { name } => {
                format!("unknown command `{name}`")
            }
            RequestError::BadJob { reason } => reason.clone(),
            RequestError::QueueFull { capacity } => {
                format!("job queue is full ({capacity} pending); retry after jobs finish")
            }
            RequestError::UnknownJob { job } => format!("no such job {job}"),
            RequestError::ShuttingDown => "daemon is shutting down; submit refused".into(),
        }
    }

    /// Renders the error as a complete server line.
    pub fn to_line(&self) -> Json {
        let mut line = Json::obj([
            ("v", PROTOCOL_VERSION.into()),
            ("type", "error".into()),
            ("code", self.code().into()),
            ("message", self.message().into()),
        ]);
        if let RequestError::UnknownJob { job } = self {
            line.push("job", (*job).into());
        }
        line
    }
}

fn malformed(reason: impl Into<String>) -> RequestError {
    RequestError::Malformed {
        reason: reason.into(),
    }
}

/// Parses one request line. The version check runs before command dispatch,
/// so version-foreign lines fail with `version` even if their command is
/// unknown too.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let value = Json::parse(line).map_err(|e| malformed(e.to_string()))?;
    if !matches!(value, Json::Obj(_)) {
        return Err(malformed("request must be a JSON object"));
    }
    match value.get("v") {
        Some(v) => {
            if v.as_u64() != Some(PROTOCOL_VERSION) {
                return Err(RequestError::Version { got: v.as_u64() });
            }
        }
        None => return Err(RequestError::Version { got: None }),
    }
    let cmd = value
        .get("cmd")
        .ok_or_else(|| malformed("missing `cmd`"))?
        .as_str()
        .ok_or_else(|| malformed("`cmd` must be a string"))?;
    let job_id = |required: bool| -> Result<Option<u64>, RequestError> {
        match value.get("job") {
            Some(member) => member
                .as_u64()
                .map(Some)
                .ok_or_else(|| malformed("`job` must be an unsigned integer")),
            None if required => Err(malformed("missing `job`")),
            None => Ok(None),
        }
    };
    match cmd {
        "submit" => {
            let spec = value
                .get("spec")
                .ok_or_else(|| malformed("missing `spec`"))?;
            Ok(Request::Submit(JobSpec::from_json(spec)?))
        }
        "status" => Ok(Request::Status(job_id(false)?)),
        "watch" => Ok(Request::Watch(job_id(true)?.expect("required"))),
        "cancel" => Ok(Request::Cancel(job_id(true)?.expect("required"))),
        "drain" => Ok(Request::Drain),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(RequestError::UnknownCommand {
            name: other.to_string(),
        }),
    }
}

/// Builds a `reply` line from extra members.
pub fn reply_line(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut line = Json::obj([("v", PROTOCOL_VERSION.into()), ("type", "reply".into())]);
    for (key, value) in members {
        line.push(key, value);
    }
    line
}

/// Builds an `event` line for a job from extra members.
pub fn event_line(
    job: u64,
    event: &str,
    members: impl IntoIterator<Item = (&'static str, Json)>,
) -> Json {
    let mut line = Json::obj([
        ("v", PROTOCOL_VERSION.into()),
        ("type", "event".into()),
        ("event", event.into()),
        ("job", job.into()),
    ]);
    for (key, value) in members {
        line.push(key, value);
    }
    line
}

/// Outcome of reading one length-capped protocol line.
#[derive(Debug, PartialEq, Eq)]
pub enum LineRead {
    /// The peer closed the stream (possibly mid-line; partial trailing
    /// lines are dropped, matching "torn final line" journal semantics).
    Eof,
    /// One complete line, newline stripped.
    Line(String),
    /// The line exceeded [`MAX_LINE_BYTES`]; the excess was discarded up to
    /// the next newline, so the next read starts on a fresh frame.
    Oversized,
    /// The line was not valid UTF-8.
    NotUtf8,
}

/// An incremental, length-capped line reader over a buffered stream.
///
/// Unlike [`BufRead::read_line`] this cannot be made to buffer an unbounded
/// line (past [`MAX_LINE_BYTES`] the rest of the frame streams to the bit
/// bucket and a typed [`LineRead::Oversized`] comes back), and a read
/// timeout (`WouldBlock`/`TimedOut`) surfaces as `Err` *without losing the
/// partial line* — the daemon polls its shutdown flag between reads, so
/// half-received requests must survive the poll boundary.
#[derive(Debug)]
pub struct LineReader<R> {
    reader: R,
    partial: Vec<u8>,
    oversized: bool,
}

impl<R: BufRead> LineReader<R> {
    /// Wraps a buffered stream.
    pub fn new(reader: R) -> Self {
        LineReader {
            reader,
            partial: Vec::new(),
            oversized: false,
        }
    }

    /// Reads the next line. `Err(WouldBlock | TimedOut)` means "nothing new
    /// yet, call again"; any buffered partial line is kept.
    pub fn read_line(&mut self) -> io::Result<LineRead> {
        loop {
            let buf = self.reader.fill_buf()?;
            if buf.is_empty() {
                // EOF. A torn partial line is dropped; a capped line that
                // never saw its newline still reports Oversized once.
                if self.oversized {
                    self.oversized = false;
                    return Ok(LineRead::Oversized);
                }
                self.partial.clear();
                return Ok(LineRead::Eof);
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let mut line = std::mem::take(&mut self.partial);
                    let fits = !self.oversized && line.len() + pos <= MAX_LINE_BYTES;
                    if fits {
                        line.extend_from_slice(&buf[..pos]);
                    }
                    let was_oversized = !fits;
                    self.oversized = false;
                    self.reader.consume(pos + 1);
                    if was_oversized {
                        return Ok(LineRead::Oversized);
                    }
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return match String::from_utf8(line) {
                        Ok(text) => Ok(LineRead::Line(text)),
                        Err(_) => Ok(LineRead::NotUtf8),
                    };
                }
                None => {
                    let n = buf.len();
                    if !self.oversized {
                        if self.partial.len() + n > MAX_LINE_BYTES {
                            self.partial.clear();
                            self.oversized = true;
                        } else {
                            self.partial.extend_from_slice(buf);
                        }
                    }
                    self.reader.consume(n);
                }
            }
        }
    }
}

/// Reads one capped line from a plain blocking stream (client-side helper;
/// the daemon holds a persistent [`LineReader`] per connection instead).
pub fn read_line_capped<R: BufRead>(reader: &mut R) -> io::Result<LineRead> {
    // A fresh LineReader per call is correct on blocking streams: state only
    // matters across WouldBlock, which blocking reads never return.
    LineReader::new(reader).read_line()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_valid_requests() {
        assert_eq!(
            parse_request(r#"{"v":1,"cmd":"drain"}"#),
            Ok(Request::Drain)
        );
        assert_eq!(
            parse_request(r#"{"v":1,"cmd":"status"}"#),
            Ok(Request::Status(None))
        );
        assert_eq!(
            parse_request(r#"{"v":1,"cmd":"status","job":7}"#),
            Ok(Request::Status(Some(7)))
        );
        assert_eq!(
            parse_request(r#"{"v":1,"cmd":"cancel","job":3}"#),
            Ok(Request::Cancel(3))
        );
        assert_eq!(
            parse_request(r#"{"v":1,"cmd":"watch","job":0}"#),
            Ok(Request::Watch(0))
        );
        assert_eq!(
            parse_request(r#"{"v":1,"cmd":"shutdown"}"#),
            Ok(Request::Shutdown)
        );
        let submit = parse_request(
            r#"{"v":1,"cmd":"submit","spec":{"kind":"fc","original":"a","locked":"b","kappa":2}}"#,
        )
        .unwrap();
        assert!(matches!(submit, Request::Submit(JobSpec::Fc { .. })));
    }

    #[test]
    fn rejects_bad_requests_with_typed_codes() {
        let cases: &[(&str, &str)] = &[
            ("", "malformed"),
            ("not json", "malformed"),
            ("[1,2]", "malformed"),
            ("42", "malformed"),
            (r#"{"v":1}"#, "malformed"),
            (r#"{"v":1,"cmd":7}"#, "malformed"),
            (r#"{"cmd":"drain"}"#, "version"),
            (r#"{"v":2,"cmd":"drain"}"#, "version"),
            (r#"{"v":"one","cmd":"drain"}"#, "version"),
            (r#"{"v":1,"cmd":"dance"}"#, "unknown-command"),
            (r#"{"v":1,"cmd":"cancel"}"#, "malformed"),
            (r#"{"v":1,"cmd":"watch","job":-1}"#, "malformed"),
            (r#"{"v":1,"cmd":"submit"}"#, "malformed"),
            (
                r#"{"v":1,"cmd":"submit","spec":{"kind":"nope"}}"#,
                "bad-job",
            ),
        ];
        for (line, code) in cases {
            let err = parse_request(line).expect_err(line);
            assert_eq!(err.code(), *code, "line: {line}");
            // Every error renders to a framed server line without panicking.
            let rendered = err.to_line().to_string();
            assert!(rendered.contains("\"type\":\"error\""), "{rendered}");
        }
    }

    #[test]
    fn version_check_precedes_command_dispatch() {
        let err = parse_request(r#"{"v":9,"cmd":"dance"}"#).unwrap_err();
        assert_eq!(err.code(), "version");
    }

    #[test]
    fn capped_reader_frames_and_discards() {
        let mut cursor = Cursor::new(b"hello\nworld\r\n".to_vec());
        assert_eq!(
            read_line_capped(&mut cursor).unwrap(),
            LineRead::Line("hello".into())
        );
        assert_eq!(
            read_line_capped(&mut cursor).unwrap(),
            LineRead::Line("world".into())
        );
        assert_eq!(read_line_capped(&mut cursor).unwrap(), LineRead::Eof);

        // Torn partial line without newline: EOF, not a line.
        let mut torn = Cursor::new(b"partial".to_vec());
        assert_eq!(read_line_capped(&mut torn).unwrap(), LineRead::Eof);

        // Invalid UTF-8.
        let mut bad = Cursor::new(b"\xff\xfe\n".to_vec());
        assert_eq!(read_line_capped(&mut bad).unwrap(), LineRead::NotUtf8);
    }

    #[test]
    fn oversized_line_is_skipped_and_stream_stays_framed() {
        let mut data = vec![b'x'; MAX_LINE_BYTES + 100];
        data.push(b'\n');
        data.extend_from_slice(b"{\"v\":1,\"cmd\":\"drain\"}\n");
        let mut cursor = Cursor::new(data);
        assert_eq!(read_line_capped(&mut cursor).unwrap(), LineRead::Oversized);
        match read_line_capped(&mut cursor).unwrap() {
            LineRead::Line(line) => {
                assert_eq!(parse_request(&line), Ok(Request::Drain));
            }
            other => panic!("expected the next frame, got {other:?}"),
        }
    }

    #[test]
    fn oversized_line_at_eof_terminates() {
        let data = vec![b'y'; MAX_LINE_BYTES + 5];
        let mut cursor = Cursor::new(data);
        assert_eq!(read_line_capped(&mut cursor).unwrap(), LineRead::Oversized);
        assert_eq!(read_line_capped(&mut cursor).unwrap(), LineRead::Eof);
    }
}
