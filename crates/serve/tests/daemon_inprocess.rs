//! In-process end-to-end tests for the attack daemon: a real Unix socket, a
//! real worker pool and the real attack pipeline, with the daemon running on
//! a background thread of the test process. Covers the full job lifecycle
//! (accepted → started → progress → done), the κs × κf × seed matrix with
//! N ≥ 4 workers, cancellation, queue backpressure and hostile clients.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use trilock_serve::{
    AttackParams, Client, ClientError, DaemonConfig, DaemonHandle, JobSpec, Json, PROTOCOL_VERSION,
};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(name)
        .canonicalize()
        .expect("fixture exists")
}

/// Fresh scratch directory (socket + state dir) per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("trilock_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Starts a daemon on a background thread and returns (client, handle).
fn start_daemon(dir: &Path, workers: usize, queue: usize) -> (Client, DaemonHandle) {
    let mut config = DaemonConfig::new(dir.join("daemon.sock"), dir.join("state"));
    config.workers = workers;
    config.queue_capacity = queue;
    let handle = trilock_serve::spawn(config.clone());
    let client =
        Client::connect_retry(&config.socket, Duration::from_secs(10)).expect("daemon comes up");
    (client, handle)
}

/// Default budgets with an aggressive checkpoint/progress cadence; s27
/// finishes in well under a second per cell even unoptimized.
fn small_params() -> AttackParams {
    AttackParams {
        checkpoint_every: 1,
        progress_every: 1,
        ..AttackParams::default()
    }
}

fn cell_spec(circuit: &Path, kappa_s: usize, kappa_f: usize, seed: u64) -> JobSpec {
    JobSpec::CampaignCell {
        circuit: circuit.to_path_buf(),
        kappa_s,
        kappa_f,
        seed,
        alpha: 0.6,
        attack: small_params(),
    }
}

/// The headline acceptance scenario: a daemon with 4 workers completes a full
/// κs × κf × seed matrix submitted over the socket, every cell recovering a
/// verified key, and `status` agrees with the terminal events.
#[test]
fn matrix_completes_on_four_workers() {
    let dir = scratch("matrix");
    let circuit = fixture("s27.bench");
    let (mut client, handle) = start_daemon(&dir, 4, 16);

    let mut jobs = Vec::new();
    for kappa_s in [1usize, 2] {
        for kappa_f in [1usize] {
            for seed in [1u64, 2] {
                let job = client
                    .submit(&cell_spec(&circuit, kappa_s, kappa_f, seed))
                    .expect("submit");
                jobs.push((job, kappa_s, kappa_f, seed));
            }
        }
    }

    assert!(client.drain().expect("drain"), "daemon drained");
    for (job, kappa_s, kappa_f, seed) in jobs {
        let status = client.status_job(job).expect("status");
        assert_eq!(
            status.get("state").and_then(Json::as_str),
            Some("done"),
            "cell ks{kappa_s}_kf{kappa_f}_s{seed}: {status}"
        );
        let result = status.get("result").expect("done job has result");
        assert_eq!(
            result.get("status").and_then(Json::as_str),
            Some("key-found"),
            "cell ks{kappa_s}_kf{kappa_f}_s{seed}: {result}"
        );
        let key = result.get("key").and_then(Json::as_str).expect("key");
        assert!(
            !key.is_empty() && key.chars().all(|c| matches!(c, '0' | '1' | '|')),
            "key: {key}"
        );
        assert_eq!(
            result.get("kappa_s").and_then(Json::as_u64),
            Some(kappa_s as u64)
        );
        assert_eq!(
            result.get("kappa_f").and_then(Json::as_u64),
            Some(kappa_f as u64)
        );
        assert_eq!(result.get("seed").and_then(Json::as_u64), Some(seed));
    }

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits cleanly");
}

/// A watched sat-attack job streams its lifecycle in order: accepted, then
/// started, then at least one progress event carrying solver counters, then
/// the terminal done event (which embeds the outcome).
#[test]
fn watch_streams_ordered_events() {
    let dir = scratch("events");
    let circuit = fixture("s27.bench");
    let locked = dir.join("s27_locked.bench");

    // Lock the fixture through the daemon itself — `lock` is a job kind too.
    let (mut client, handle) = start_daemon(&dir, 1, 8);
    let lock_job = client
        .submit(&JobSpec::Lock {
            input: circuit.clone(),
            output: locked.clone(),
            kappa_s: 1,
            kappa_f: 1,
            alpha: 0.6,
            seed: 7,
            key_out: None,
        })
        .expect("submit lock");
    let done = client.wait(lock_job).expect("lock finishes");
    assert_eq!(done.get("event").and_then(Json::as_str), Some("done"));
    assert!(locked.is_file(), "daemon wrote the locked netlist");

    let job = client
        .submit(&JobSpec::SatAttack {
            original: circuit,
            locked,
            kappa: 2,
            seed: 8,
            attack: small_params(),
        })
        .expect("submit attack");

    let mut kinds = Vec::new();
    let terminal = client
        .watch(job, |event| {
            let kind = event.get("event").and_then(Json::as_str).unwrap_or("?");
            if kind == "progress" {
                for counter in [
                    "dips",
                    "elapsed_ms",
                    "conflicts",
                    "propagations",
                    "learnt_live",
                ] {
                    assert!(
                        event.get(counter).and_then(Json::as_u64).is_some(),
                        "progress event missing `{counter}`: {event}"
                    );
                }
            }
            kinds.push(kind.to_string());
        })
        .expect("watch");

    assert_eq!(terminal.get("event").and_then(Json::as_str), Some("done"));
    assert_eq!(
        terminal.get("status").and_then(Json::as_str),
        Some("key-found")
    );
    let accepted = kinds
        .iter()
        .position(|k| k == "accepted")
        .expect("accepted");
    let started = kinds.iter().position(|k| k == "started").expect("started");
    let progress = kinds
        .iter()
        .position(|k| k == "progress")
        .expect("progress");
    assert!(accepted < started && started < progress, "order: {kinds:?}");

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits cleanly");
}

/// Cancelling a queued job is immediate; the job never runs and its terminal
/// event is `cancelled`.
#[test]
fn cancel_queued_job() {
    let dir = scratch("cancel");
    let circuit = fixture("s27.bench");
    // One worker and a long-running first job keep the second job queued.
    let (mut client, handle) = start_daemon(&dir, 1, 8);

    let blocker = client
        .submit(&cell_spec(&circuit, 2, 2, 1))
        .expect("submit blocker");
    let victim = client
        .submit(&cell_spec(&circuit, 2, 2, 2))
        .expect("submit victim");

    let state = client.cancel(victim).expect("cancel");
    assert_eq!(state, "cancelled");
    let event = client.wait(victim).expect("victim terminal");
    assert_eq!(event.get("event").and_then(Json::as_str), Some("cancelled"));

    // The blocker is unaffected.
    let event = client.wait(blocker).expect("blocker terminal");
    assert_eq!(event.get("event").and_then(Json::as_str), Some("done"));

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits cleanly");
}

/// When the bounded queue is full the daemon replies with a typed
/// `queue-full` error instead of buffering without bound, and accepts the
/// job once capacity frees up.
#[test]
fn queue_full_is_typed_backpressure() {
    let dir = scratch("backpressure");
    let circuit = fixture("s27.bench");
    let (mut client, handle) = start_daemon(&dir, 1, 1);

    // Occupy the single worker and then the single queue slot. The worker
    // may grab the first job quickly, so push until the queue rejects.
    let mut accepted = Vec::new();
    let capacity = loop {
        match client.submit(&cell_spec(&circuit, 2, 2, 40 + accepted.len() as u64)) {
            Ok(job) => accepted.push(job),
            Err(ClientError::Server { code, message }) => {
                assert_eq!(code, "queue-full", "{message}");
                assert!(message.contains('1'), "capacity in message: {message}");
                break accepted.len();
            }
            Err(other) => panic!("unexpected submit failure: {other}"),
        }
        assert!(accepted.len() < 8, "queue never filled");
    };
    assert!(capacity >= 1);

    // Draining frees capacity; the daemon accepts new work again.
    assert!(client.drain().expect("drain"));
    client
        .submit(&cell_spec(&circuit, 1, 1, 99))
        .expect("submit after drain");
    assert!(client.drain().expect("drain again"));

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits cleanly");
}

/// Hostile clients — garbage lines, wrong versions, oversized frames, or a
/// disconnect mid-line — get typed errors and never wedge the daemon: a
/// well-behaved client still completes work afterwards.
#[test]
fn hostile_clients_cannot_wedge_the_daemon() {
    let dir = scratch("hostile");
    let circuit = fixture("s27.bench");
    let (mut client, handle) = start_daemon(&dir, 1, 8);
    let socket = dir.join("daemon.sock");

    let error_code = |raw: &mut UnixStream, line: &[u8]| -> String {
        raw.write_all(line).expect("write");
        raw.flush().expect("flush");
        let mut reader = BufReader::new(raw.try_clone().expect("clone"));
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        let parsed = Json::parse(&reply).expect("server speaks JSON");
        assert_eq!(parsed.get("type").and_then(Json::as_str), Some("error"));
        parsed
            .get("code")
            .and_then(Json::as_str)
            .expect("typed code")
            .to_string()
    };

    let mut raw = UnixStream::connect(&socket).expect("connect raw");
    assert_eq!(error_code(&mut raw, b"this is not json\n"), "malformed");
    assert_eq!(
        error_code(&mut raw, b"{\"v\":99,\"cmd\":\"status\"}\n"),
        "version"
    );
    let mut oversized = vec![b'x'; trilock_serve::MAX_LINE_BYTES + 100];
    oversized.push(b'\n');
    assert_eq!(error_code(&mut raw, &oversized), "oversized");
    // Same connection still works after every rejected line.
    let ok = format!("{{\"v\":{PROTOCOL_VERSION},\"cmd\":\"status\"}}\n");
    raw.write_all(ok.as_bytes()).expect("write");
    let mut reader = BufReader::new(raw.try_clone().expect("clone"));
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    let parsed = Json::parse(&reply).expect("reply is JSON");
    assert_eq!(parsed.get("type").and_then(Json::as_str), Some("reply"));

    // Disconnect mid-line: the daemon must just drop the torn frame.
    let mut torn = UnixStream::connect(&socket).expect("connect torn");
    torn.write_all(b"{\"v\":1,\"cmd\":\"sta").expect("write");
    drop(torn);

    // Unknown job ids are typed errors through the high-level client too.
    match client.status_job(424242) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "unknown-job"),
        other => panic!("expected unknown-job, got {other:?}"),
    }

    // And the daemon still does real work.
    let job = client
        .submit(&cell_spec(&circuit, 1, 1, 5))
        .expect("submit after hostility");
    let event = client.wait(job).expect("job finishes");
    assert_eq!(event.get("event").and_then(Json::as_str), Some("done"));

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits cleanly");
}

/// Jobs recovered from the journal already in a terminal state must still
/// answer `watch`/`wait` with a terminal event (events are not journaled, so
/// the daemon synthesizes them at recovery) — previously such a watch
/// replayed nothing, registered no watcher, and the client hung forever.
/// Recovery also garbage-collects the terminal jobs' checkpoints.
#[test]
fn recovered_terminal_jobs_replay_terminal_events() {
    let dir = scratch("recovered_terminal");
    let state = dir.join("state");
    std::fs::create_dir_all(&state).unwrap();
    let circuit = fixture("s27.bench");

    // Hand-write the journal a previous daemon left behind: job 1 finished,
    // job 2 failed, job 3 was cancelled — none was ever collected.
    let journal = format!(
        concat!(
            "{{\"v\":1,\"job\":1,\"state\":\"queued\",\"spec\":{}}}\n",
            "{{\"v\":1,\"job\":1,\"state\":\"running\"}}\n",
            "{{\"v\":1,\"job\":1,\"state\":\"done\",\"result\":",
            "{{\"status\":\"key-found\",\"dips\":3,\"key\":\"01\"}}}}\n",
            "{{\"v\":1,\"job\":2,\"state\":\"queued\",\"spec\":{}}}\n",
            "{{\"v\":1,\"job\":2,\"state\":\"failed\",\"error\":\"boom\"}}\n",
            "{{\"v\":1,\"job\":3,\"state\":\"queued\",\"spec\":{}}}\n",
            "{{\"v\":1,\"job\":3,\"state\":\"cancelled\"}}\n",
        ),
        cell_spec(&circuit, 1, 1, 1).to_json(),
        cell_spec(&circuit, 1, 1, 2).to_json(),
        cell_spec(&circuit, 1, 1, 3).to_json(),
    );
    std::fs::write(state.join("journal.jsonl"), journal).unwrap();
    // A checkpoint left behind by the finished job must be cleaned up.
    std::fs::write(state.join("job-1.ckpt"), b"stale").unwrap();

    let (mut client, handle) = start_daemon(&dir, 1, 8);

    let done = client.wait(1).expect("recovered done job ends its stream");
    assert_eq!(done.get("event").and_then(Json::as_str), Some("done"));
    assert_eq!(done.get("status").and_then(Json::as_str), Some("key-found"));
    assert_eq!(done.get("key").and_then(Json::as_str), Some("01"));
    assert_eq!(done.get("dips").and_then(Json::as_u64), Some(3));

    let failed = client
        .wait(2)
        .expect("recovered failed job ends its stream");
    assert_eq!(failed.get("event").and_then(Json::as_str), Some("failed"));
    assert_eq!(failed.get("error").and_then(Json::as_str), Some("boom"));

    let cancelled = client
        .wait(3)
        .expect("recovered cancelled job ends its stream");
    assert_eq!(
        cancelled.get("event").and_then(Json::as_str),
        Some("cancelled")
    );

    assert!(
        !state.join("job-1.ckpt").exists(),
        "terminal job's checkpoint survived recovery"
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits cleanly");
}

/// Terminal jobs leave no checkpoint files behind: a timed-out (but Done)
/// job and a cancelled-while-running job both clean up `job-<id>.ckpt`,
/// since terminal jobs are never resumed and ids are never reused.
#[test]
fn terminal_jobs_leave_no_checkpoints() {
    let dir = scratch("ckpt_gc");
    let circuit = fixture("s27.bench");
    let state = dir.join("state");
    let (mut client, handle) = start_daemon(&dir, 1, 8);

    // A vanishing time budget forces the timed-out outcome.
    let timed = client
        .submit(&JobSpec::CampaignCell {
            circuit: circuit.clone(),
            kappa_s: 2,
            kappa_f: 2,
            seed: 1,
            alpha: 0.6,
            attack: AttackParams {
                time_limit_secs: Some(1e-6),
                ..small_params()
            },
        })
        .expect("submit timed cell");
    let event = client.wait(timed).expect("timed cell terminal");
    assert_eq!(event.get("event").and_then(Json::as_str), Some("done"));
    assert_eq!(
        event.get("status").and_then(Json::as_str),
        Some("timed-out")
    );
    assert!(
        !state.join(format!("job-{timed}.ckpt")).exists(),
        "timed-out job left a checkpoint"
    );

    // Cancel a slow cell from a second connection once it makes progress.
    let slow = client
        .submit(&cell_spec(&circuit, 2, 2, 3))
        .expect("submit slow cell");
    let mut canceller = Client::connect(dir.join("daemon.sock")).expect("second client connects");
    let mut asked = false;
    let event = client
        .watch(slow, |event| {
            if !asked && event.get("event").and_then(Json::as_str) == Some("progress") {
                asked = true;
                canceller.cancel(slow).expect("cancel");
            }
        })
        .expect("slow cell terminal");
    let kind = event.get("event").and_then(Json::as_str).unwrap_or("?");
    // The cell may legitimately finish before the cancel lands; either way
    // the terminal transition must have removed the checkpoint.
    assert!(
        matches!(kind, "cancelled" | "done"),
        "unexpected terminal event: {event}"
    );
    assert!(
        !state.join(format!("job-{slow}.ckpt")).exists(),
        "terminal job left a checkpoint"
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits cleanly");
}

/// `fc` jobs run through the daemon as well, returning the functional
/// corruptibility estimate in the result.
#[test]
fn fc_jobs_return_estimates() {
    let dir = scratch("fc");
    let circuit = fixture("s27.bench");
    let locked = dir.join("s27_locked.bench");
    let (mut client, handle) = start_daemon(&dir, 2, 8);

    let lock_job = client
        .submit(&JobSpec::Lock {
            input: circuit.clone(),
            output: locked.clone(),
            kappa_s: 2,
            kappa_f: 1,
            alpha: 0.6,
            seed: 3,
            key_out: None,
        })
        .expect("submit lock");
    client.wait(lock_job).expect("lock finishes");

    let fc_job = client
        .submit(&JobSpec::Fc {
            original: circuit,
            locked,
            kappa: 3,
            cycles: 4,
            samples: 64,
            seed: 3,
        })
        .expect("submit fc");
    let event = client.wait(fc_job).expect("fc finishes");
    assert_eq!(event.get("event").and_then(Json::as_str), Some("done"));
    let fc = event.get("fc").and_then(Json::as_f64).expect("fc estimate");
    assert!((0.0..=1.0).contains(&fc), "fc = {fc}");

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits cleanly");
}
