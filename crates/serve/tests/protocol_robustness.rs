//! Hostile-input hardening for the daemon's wire protocol: arbitrary byte
//! mutations, truncations, pure garbage, version-foreign lines and oversized
//! frames must surface as typed [`RequestError`]s — never a panic, and never
//! a wedged connection (the reader must keep framing correctly afterwards).

use std::io::BufReader;

use proptest::prelude::*;

use trilock_serve::{
    parse_request, AttackParams, JobSpec, Json, LineRead, LineReader, Request, RequestError,
    MAX_LINE_BYTES, PROTOCOL_VERSION,
};

/// A representative valid submit line to mutate.
fn sample_submit_line() -> String {
    let spec = JobSpec::CampaignCell {
        circuit: "/tmp/s27.bench".into(),
        kappa_s: 2,
        kappa_f: 1,
        seed: 7,
        alpha: 0.6,
        attack: AttackParams::default(),
    };
    let mut line = Json::obj([("v", PROTOCOL_VERSION.into()), ("cmd", "submit".into())]);
    line.push("spec", spec.to_json());
    line.to_string()
}

/// Every error a hostile client can provoke must map to one of the protocol's
/// published error codes (so clients can branch on `code` without parsing
/// free-text messages).
fn assert_typed(err: &RequestError) {
    let known = [
        "oversized",
        "malformed",
        "version",
        "unknown-command",
        "bad-job",
        "queue-full",
        "unknown-job",
        "shutting-down",
    ];
    assert!(
        known.contains(&err.code()),
        "unpublished error code `{}`",
        err.code()
    );
    assert!(!err.message().is_empty());
}

/// Strategy: short lowercase identifiers (the vendored proptest has no regex
/// strategies, so build names from a counter).
fn name() -> impl Strategy<Value = String> {
    (0u32..1_000_000).prop_map(|n| format!("c{n:06}"))
}

/// Strategy: αs on a coarse grid so `f64` display round-trips exactly.
fn alpha() -> impl Strategy<Value = f64> {
    (0usize..=10).prop_map(|n| n as f64 / 10.0)
}

/// Strategy: attack budgets with and without a time limit.
fn params() -> impl Strategy<Value = AttackParams> {
    (1usize..8, 1u64..1000, 0usize..=20).prop_map(|(unroll, dips, tl)| AttackParams {
        initial_unroll: unroll,
        max_unroll: unroll + 4,
        max_dips: dips,
        time_limit_secs: (tl > 0).then_some(tl as f64),
        ..AttackParams::default()
    })
}

/// Strategy: structurally valid job specs covering all four kinds.
fn job_spec() -> impl Strategy<Value = JobSpec> {
    prop_oneof![
        (name(), 1usize..6, 1u64..100, params()).prop_map(|(name, kappa, seed, attack)| {
            JobSpec::SatAttack {
                original: format!("/tmp/{name}.bench").into(),
                locked: format!("/tmp/{name}_locked.bench").into(),
                kappa,
                seed,
                attack,
            }
        }),
        (name(), 1usize..6, 1usize..6, 1u64..100, alpha(), params()).prop_map(
            |(name, kappa_s, kappa_f, seed, alpha, attack)| JobSpec::CampaignCell {
                circuit: format!("/tmp/{name}.bench").into(),
                kappa_s,
                kappa_f,
                seed,
                alpha,
                attack,
            }
        ),
        (name(), 1usize..6, 1usize..32, 1usize..2000, 1u64..100).prop_map(
            |(name, kappa, cycles, samples, seed)| JobSpec::Fc {
                original: format!("/tmp/{name}.bench").into(),
                locked: format!("/tmp/{name}_locked.bench").into(),
                kappa,
                cycles,
                samples,
                seed,
            }
        ),
        (
            name(),
            1usize..6,
            1usize..6,
            alpha(),
            1u64..100,
            any::<bool>()
        )
            .prop_map(
                |(name, kappa_s, kappa_f, alpha, seed, with_key)| JobSpec::Lock {
                    input: format!("/tmp/{name}.bench").into(),
                    output: format!("/tmp/{name}_locked.bench").into(),
                    kappa_s,
                    kappa_f,
                    alpha,
                    seed,
                    key_out: with_key.then(|| format!("/tmp/{name}.key").into()),
                }
            ),
    ]
}

/// Strategy: command-like names (lowercase with dashes).
fn command_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..27, 1..16).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| if b == 26 { '-' } else { (b'a' + b) as char })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Flipping any single byte of a valid request never panics; when the
    /// result is an error, the error is one of the published codes.
    #[test]
    fn single_byte_mutation_never_panics(position in 0usize..4096, delta in 1u8..=255) {
        let line = sample_submit_line();
        let mut bytes = line.clone().into_bytes();
        let position = position % bytes.len();
        bytes[position] = bytes[position].wrapping_add(delta);
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        if let Err(err) = parse_request(&mutated) {
            assert_typed(&err);
        }
    }

    /// Any strict prefix of a valid request is rejected with a typed error.
    #[test]
    fn truncation_is_rejected(cut in 0usize..4096) {
        let line = sample_submit_line();
        let cut = cut % line.len();
        let truncated: String = line.chars().take(cut).collect();
        let err = parse_request(&truncated).expect_err("prefix parsed as a request");
        assert_typed(&err);
    }

    /// Arbitrary bytes are rejected with a typed error — never a panic.
    #[test]
    fn garbage_is_rejected(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let garbage = String::from_utf8_lossy(&bytes).into_owned();
        let err = parse_request(&garbage).expect_err("garbage parsed as a request");
        assert_typed(&err);
    }

    /// Lines from a different protocol version fail with `version` before any
    /// command dispatch, whatever the command says.
    #[test]
    fn version_foreign_lines_are_rejected(
        v in prop_oneof![Just(0u64), 2u64..1000],
        cmd in prop_oneof![
            Just("submit".to_string()),
            Just("status".to_string()),
            Just("shutdown".to_string()),
            command_name(),
        ],
    ) {
        let line = format!("{{\"v\":{v},\"cmd\":\"{cmd}\"}}");
        match parse_request(&line) {
            Err(RequestError::Version { got }) => prop_assert_eq!(got, Some(v)),
            other => return Err(TestCaseError::fail(format!("expected version error, got {other:?}"))),
        }
    }

    /// A missing `v` member is a version error too (old clients must not be
    /// silently interpreted).
    #[test]
    fn missing_version_is_rejected(cmd in command_name()) {
        let line = format!("{{\"cmd\":\"{cmd}\"}}");
        prop_assert!(matches!(
            parse_request(&line),
            Err(RequestError::Version { got: None })
        ));
    }

    /// Unknown commands on the right version are `unknown-command`, not
    /// `malformed` — the line itself was fine.
    #[test]
    fn unknown_commands_are_typed(cmd in command_name()) {
        prop_assume!(!matches!(
            cmd.as_str(),
            "submit" | "status" | "watch" | "cancel" | "drain" | "shutdown"
        ));
        let line = format!("{{\"v\":{PROTOCOL_VERSION},\"cmd\":\"{cmd}\"}}");
        match parse_request(&line) {
            Err(RequestError::UnknownCommand { name }) => prop_assert_eq!(name, cmd),
            other => return Err(TestCaseError::fail(format!("expected unknown-command, got {other:?}"))),
        }
    }

    /// Job specs survive a full wire round trip: struct → JSON text → parse →
    /// struct, byte-for-byte equal.
    #[test]
    fn job_spec_round_trips(spec in job_spec()) {
        let text = spec.to_json().to_string();
        let parsed = Json::parse(&text).expect("spec JSON re-parses");
        let back = JobSpec::from_json(&parsed).expect("spec JSON re-validates");
        prop_assert_eq!(back, spec);
    }

    /// An oversized frame is reported as `Oversized` and fully discarded: the
    /// next line on the stream still parses, whatever filler the oversized
    /// frame carried.
    #[test]
    fn oversized_frames_preserve_framing(filler in any::<u8>(), extra in 1usize..4096) {
        let filler = if filler == b'\n' { b'x' } else { filler };
        let mut stream = vec![filler; MAX_LINE_BYTES + extra];
        stream.push(b'\n');
        let follow_up = format!("{{\"v\":{PROTOCOL_VERSION},\"cmd\":\"drain\"}}\n");
        stream.extend_from_slice(follow_up.as_bytes());

        let mut reader = LineReader::new(BufReader::new(&stream[..]));
        prop_assert!(matches!(reader.read_line().unwrap(), LineRead::Oversized));
        match reader.read_line().unwrap() {
            LineRead::Line(line) => {
                prop_assert_eq!(parse_request(&line), Ok(Request::Drain));
            }
            other => return Err(TestCaseError::fail(format!("framing lost after oversized frame: {other:?}"))),
        }
        prop_assert!(matches!(reader.read_line().unwrap(), LineRead::Eof));
    }

    /// The line reader terminates on any byte stream — no input can wedge it
    /// into an infinite loop, and a torn final line is reported as EOF.
    #[test]
    fn reader_always_terminates(bytes in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let newlines = bytes.iter().filter(|&&b| b == b'\n').count();
        let mut reader = LineReader::new(BufReader::new(&bytes[..]));
        let mut reads = 0usize;
        loop {
            match reader.read_line().unwrap() {
                LineRead::Eof => break,
                _ => reads += 1,
            }
            prop_assert!(reads <= newlines, "more frames than newlines");
        }
    }
}

/// Error lines rendered for the client carry the machine-readable `code`, the
/// protocol version, and a human message.
#[test]
fn error_lines_are_self_describing() {
    let err = parse_request("not json at all").unwrap_err();
    let line = err.to_line();
    assert_eq!(line.get("v").and_then(Json::as_u64), Some(PROTOCOL_VERSION));
    assert_eq!(line.get("type").and_then(Json::as_str), Some("error"));
    assert_eq!(line.get("code").and_then(Json::as_str), Some("malformed"));
    assert!(line
        .get("message")
        .and_then(Json::as_str)
        .is_some_and(|m| !m.is_empty()));
}

/// Submitting a structurally valid line with a bogus job body is `bad-job`,
/// and the reason names the offending field.
#[test]
fn bad_job_reasons_name_the_field() {
    let line = format!(
        "{{\"v\":{PROTOCOL_VERSION},\"cmd\":\"submit\",\"spec\":{{\"kind\":\"sat-attack\",\"original\":\"/tmp/a\",\"locked\":\"/tmp/b\",\"kappa\":\"three\"}}}}"
    );
    match parse_request(&line) {
        Err(RequestError::BadJob { reason }) => {
            assert!(reason.contains("kappa"), "reason: {reason}");
        }
        other => panic!("expected bad-job, got {other:?}"),
    }
}
