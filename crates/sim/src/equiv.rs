//! Randomized sequential equivalence checking.
//!
//! Full sequential equivalence checking is PSPACE-hard; for the purposes of
//! the attack loop (candidate-key validation) and of the locking flow
//! (correct-key sanity check) a randomized simulation-based check over many
//! independent input sequences is the standard practical substitute and is
//! what this module provides.
//!
//! The checks run on the 64-lane [`crate::packed`] engine: every packed pass
//! drives up to 64 random sequences at once (one per lane), so a 64-sequence
//! validation costs two synchronized circuit traversals instead of 128. The
//! returned [`Counterexample`] is identical to what the scalar reference
//! implementations ([`random_equiv_check_scalar`],
//! [`key_restores_function_scalar`]) produce for the same seed: the
//! first-drawn mismatching sequence with its earliest mismatch cycle.

use rand::Rng;

use netlist::Netlist;

use crate::packed::{self, PackedSimulator, LANES};
use crate::simulator::{check_same_interface, SimError, Simulator};
use crate::stimulus::{self, Sequence};

/// A witness that two circuits differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Key sequence applied to the locked circuit (empty for plain checks).
    pub key: Vec<Vec<bool>>,
    /// Functional input sequence that exposes the difference.
    pub inputs: Vec<Vec<bool>>,
    /// Cycle (0-based, within the functional phase) of the first mismatch.
    pub cycle: usize,
}

/// Steps both packed simulators through `input_words` (after applying
/// `key_words` to `b` only) and returns the first mismatching lane in draw
/// order together with its earliest mismatch cycle — exactly the scalar
/// iteration order, since lane index equals draw order.
fn first_mismatching_lane(
    sim_a: &mut PackedSimulator<'_>,
    sim_b: &mut PackedSimulator<'_>,
    key_words: &[Vec<u64>],
    input_words: &[Vec<u64>],
    lanes: usize,
) -> Result<Option<(usize, usize)>, SimError> {
    sim_a.reset();
    sim_b.reset();
    for cycle in key_words {
        sim_b.step(cycle)?;
    }
    let mask = packed::lane_mask(lanes);
    let mut seen = 0u64;
    let mut first_cycle = [0usize; LANES];
    for (t, cycle_words) in input_words.iter().enumerate() {
        let out_a = sim_a.step(cycle_words)?;
        let out_b = sim_b.step(cycle_words)?;
        let mut diff = 0u64;
        for (a, b) in out_a.iter().zip(&out_b) {
            diff |= a ^ b;
        }
        let mut fresh = diff & !seen & mask;
        if fresh != 0 {
            seen |= fresh;
            while fresh != 0 {
                let lane = fresh.trailing_zeros() as usize;
                first_cycle[lane] = t;
                fresh &= fresh - 1;
            }
            // The result can no longer change once every lane has mismatched
            // or once lane 0 has: no lower-indexed (earlier-drawn) lane can
            // overtake it, and its earliest cycle is already recorded.
            if seen == mask || seen & 1 == 1 {
                break;
            }
        }
    }
    if seen == 0 {
        Ok(None)
    } else {
        let lane = seen.trailing_zeros() as usize;
        Ok(Some((lane, first_cycle[lane])))
    }
}

/// Compares two circuits with identical interfaces over `sequences` random
/// input sequences of `cycles` cycles each, 64 sequences per packed pass.
/// Returns `None` if no difference was observed.
///
/// This is exactly [`key_restores_function`] with an empty key phase (the
/// returned [`Counterexample::key`] is empty).
///
/// # Errors
///
/// Propagates simulator errors (invalid netlists, interface mismatches).
pub fn random_equiv_check<R: Rng + ?Sized>(
    a: &Netlist,
    b: &Netlist,
    cycles: usize,
    sequences: usize,
    rng: &mut R,
) -> Result<Option<Counterexample>, SimError> {
    key_restores_function(a, b, &[], cycles, sequences, rng)
}

/// Scalar reference implementation of [`random_equiv_check`]: one
/// [`Simulator`] pass per sequence. Kept as the differential-testing baseline
/// for the packed checker.
///
/// # Errors
///
/// Propagates simulator errors (invalid netlists, interface mismatches).
pub fn random_equiv_check_scalar<R: Rng + ?Sized>(
    a: &Netlist,
    b: &Netlist,
    cycles: usize,
    sequences: usize,
    rng: &mut R,
) -> Result<Option<Counterexample>, SimError> {
    key_restores_function_scalar(a, b, &[], cycles, sequences, rng)
}

/// Checks that the locked circuit configured with `key` behaves like the
/// original over `sequences` random input sequences of `cycles` cycles, 64
/// sequences per packed pass (the key phase is broadcast to every lane).
///
/// The key sequence is applied to the locked circuit right after reset; the
/// original circuit starts directly with the functional inputs, exactly as in
/// the paper's threat model.
///
/// # Errors
///
/// Propagates simulator errors (invalid netlists, interface mismatches).
pub fn key_restores_function<R: Rng + ?Sized>(
    original: &Netlist,
    locked: &Netlist,
    key: &[Vec<bool>],
    cycles: usize,
    sequences: usize,
    rng: &mut R,
) -> Result<Option<Counterexample>, SimError> {
    let mut orig_sim = PackedSimulator::new(original)?;
    let mut lock_sim = PackedSimulator::new(locked)?;
    check_same_interface(original, locked)?;
    let width = original.num_inputs();
    let key_words = packed::broadcast_sequence(key);
    let mut done = 0usize;
    while done < sequences {
        let lanes = (sequences - done).min(LANES);
        let drawn: Vec<Sequence> = (0..lanes)
            .map(|_| stimulus::random_sequence(rng, width, cycles))
            .collect();
        let input_words = packed::pack_sequences(&drawn);
        if let Some((lane, cycle)) = first_mismatching_lane(
            &mut orig_sim,
            &mut lock_sim,
            &key_words,
            &input_words,
            lanes,
        )? {
            return Ok(Some(Counterexample {
                key: key.to_vec(),
                inputs: drawn[lane].clone(),
                cycle,
            }));
        }
        done += lanes;
    }
    Ok(None)
}

/// Scalar reference implementation of [`key_restores_function`]
/// (differential baseline; returns the same counterexample as the packed
/// checker for the same seed).
///
/// # Errors
///
/// Propagates simulator errors (invalid netlists, interface mismatches).
pub fn key_restores_function_scalar<R: Rng + ?Sized>(
    original: &Netlist,
    locked: &Netlist,
    key: &[Vec<bool>],
    cycles: usize,
    sequences: usize,
    rng: &mut R,
) -> Result<Option<Counterexample>, SimError> {
    let mut orig_sim = Simulator::new(original)?;
    let mut lock_sim = Simulator::new(locked)?;
    check_same_interface(original, locked)?;
    let width = original.num_inputs();
    for _ in 0..sequences {
        let inputs = stimulus::random_sequence(rng, width, cycles);
        orig_sim.reset();
        lock_sim.reset();
        for key_cycle in key {
            lock_sim.step(key_cycle)?;
        }
        for (t, cycle_inputs) in inputs.iter().enumerate() {
            let expected = orig_sim.step(cycle_inputs)?;
            let got = lock_sim.step(cycle_inputs)?;
            if expected != got {
                return Ok(Some(Counterexample {
                    key: key.to_vec(),
                    inputs,
                    cycle: t,
                }));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GateKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_circuit(invert: bool) -> Netlist {
        let mut nl = Netlist::new(if invert { "b" } else { "a" });
        let x = nl.add_input("x");
        let y = nl.add_input("y");
        let kind = if invert {
            GateKind::Xnor
        } else {
            GateKind::Xor
        };
        let o = nl.add_gate(kind, &[x, y], "o").unwrap();
        nl.mark_output(o).unwrap();
        nl
    }

    #[test]
    fn identical_circuits_are_equivalent() {
        let a = xor_circuit(false);
        let b = xor_circuit(false);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_equiv_check(&a, &b, 4, 16, &mut rng)
            .unwrap()
            .is_none());
    }

    #[test]
    fn different_circuits_yield_a_counterexample() {
        let a = xor_circuit(false);
        let b = xor_circuit(true);
        let mut rng = StdRng::seed_from_u64(1);
        let cex = random_equiv_check(&a, &b, 4, 16, &mut rng).unwrap();
        let cex = cex.expect("xor and xnor must differ");
        assert_eq!(cex.cycle, 0);
        assert!(cex.key.is_empty());
    }

    #[test]
    fn packed_counterexample_matches_the_scalar_reference() {
        let a = xor_circuit(false);
        let b = xor_circuit(true);
        for sequences in [1, 16, 64, 100] {
            let packed_cex =
                random_equiv_check(&a, &b, 4, sequences, &mut StdRng::seed_from_u64(9)).unwrap();
            let scalar_cex =
                random_equiv_check_scalar(&a, &b, 4, sequences, &mut StdRng::seed_from_u64(9))
                    .unwrap();
            assert_eq!(packed_cex, scalar_cex, "sequences = {sequences}");
        }
    }

    #[test]
    fn key_check_skips_the_key_phase() {
        // Original: out = x. "Locked": after one key cycle the output equals x
        // regardless of key value (trivially correct for any key).
        let mut original = Netlist::new("o");
        let x = original.add_input("x");
        let o = original.add_gate(GateKind::Buf, &[x], "o").unwrap();
        original.mark_output(o).unwrap();

        let mut locked = Netlist::new("l");
        let x = locked.add_input("x");
        let o = locked.add_gate(GateKind::Buf, &[x], "o").unwrap();
        locked.mark_output(o).unwrap();

        let mut rng = StdRng::seed_from_u64(5);
        let key = vec![vec![true]];
        assert!(
            key_restores_function(&original, &locked, &key, 3, 8, &mut rng)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let a = xor_circuit(false);
        let mut b = Netlist::new("one_input");
        let x = b.add_input("x");
        let o = b.add_gate(GateKind::Buf, &[x], "o").unwrap();
        b.mark_output(o).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_equiv_check(&a, &b, 2, 2, &mut rng).is_err());
    }

    #[test]
    fn output_count_mismatch_is_an_error_not_a_truncated_comparison() {
        // Same input count, different output count: the comparison must fail
        // loudly (scalar reference included) rather than zip-truncate the
        // extra output away and report equivalence.
        let a = xor_circuit(false);
        let mut b = xor_circuit(false);
        let x = b.net_id("x").unwrap();
        let extra = b.add_gate(GateKind::Not, &[x], "extra").unwrap();
        b.mark_output(extra).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let expected = SimError::OutputWidthMismatch {
            expected: 1,
            got: 2,
        };
        assert_eq!(
            random_equiv_check(&a, &b, 2, 4, &mut rng).unwrap_err(),
            expected
        );
        assert_eq!(
            random_equiv_check_scalar(&a, &b, 2, 4, &mut rng).unwrap_err(),
            expected
        );
        assert_eq!(
            key_restores_function(&a, &b, &[], 2, 4, &mut rng).unwrap_err(),
            expected
        );
    }
}
