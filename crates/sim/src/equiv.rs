//! Randomized sequential equivalence checking.
//!
//! Full sequential equivalence checking is PSPACE-hard; for the purposes of
//! the attack loop (candidate-key validation) and of the locking flow
//! (correct-key sanity check) a randomized simulation-based check over many
//! independent input sequences is the standard practical substitute and is
//! what this module provides.

use rand::Rng;

use netlist::Netlist;

use crate::simulator::{SimError, Simulator};
use crate::stimulus;

/// A witness that two circuits differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Key sequence applied to the locked circuit (empty for plain checks).
    pub key: Vec<Vec<bool>>,
    /// Functional input sequence that exposes the difference.
    pub inputs: Vec<Vec<bool>>,
    /// Cycle (0-based, within the functional phase) of the first mismatch.
    pub cycle: usize,
}

/// Compares two circuits with identical interfaces over `sequences` random
/// input sequences of `cycles` cycles each. Returns `None` if no difference
/// was observed.
///
/// # Errors
///
/// Propagates simulator errors (invalid netlists, interface mismatches).
pub fn random_equiv_check<R: Rng + ?Sized>(
    a: &Netlist,
    b: &Netlist,
    cycles: usize,
    sequences: usize,
    rng: &mut R,
) -> Result<Option<Counterexample>, SimError> {
    let mut sim_a = Simulator::new(a)?;
    let mut sim_b = Simulator::new(b)?;
    if a.num_inputs() != b.num_inputs() {
        return Err(SimError::InputWidthMismatch {
            expected: a.num_inputs(),
            got: b.num_inputs(),
        });
    }
    let width = a.num_inputs();
    for _ in 0..sequences {
        let inputs = stimulus::random_sequence(rng, width, cycles);
        sim_a.reset();
        sim_b.reset();
        for (t, cycle_inputs) in inputs.iter().enumerate() {
            let out_a = sim_a.step(cycle_inputs)?;
            let out_b = sim_b.step(cycle_inputs)?;
            if out_a != out_b {
                return Ok(Some(Counterexample {
                    key: Vec::new(),
                    inputs,
                    cycle: t,
                }));
            }
        }
    }
    Ok(None)
}

/// Checks that the locked circuit configured with `key` behaves like the
/// original over `sequences` random input sequences of `cycles` cycles.
///
/// The key sequence is applied to the locked circuit right after reset; the
/// original circuit starts directly with the functional inputs, exactly as in
/// the paper's threat model.
///
/// # Errors
///
/// Propagates simulator errors (invalid netlists, interface mismatches).
pub fn key_restores_function<R: Rng + ?Sized>(
    original: &Netlist,
    locked: &Netlist,
    key: &[Vec<bool>],
    cycles: usize,
    sequences: usize,
    rng: &mut R,
) -> Result<Option<Counterexample>, SimError> {
    let mut orig_sim = Simulator::new(original)?;
    let mut lock_sim = Simulator::new(locked)?;
    if original.num_inputs() != locked.num_inputs() {
        return Err(SimError::InputWidthMismatch {
            expected: original.num_inputs(),
            got: locked.num_inputs(),
        });
    }
    let width = original.num_inputs();
    for _ in 0..sequences {
        let inputs = stimulus::random_sequence(rng, width, cycles);
        orig_sim.reset();
        lock_sim.reset();
        for key_cycle in key {
            lock_sim.step(key_cycle)?;
        }
        for (t, cycle_inputs) in inputs.iter().enumerate() {
            let expected = orig_sim.step(cycle_inputs)?;
            let got = lock_sim.step(cycle_inputs)?;
            if expected != got {
                return Ok(Some(Counterexample {
                    key: key.to_vec(),
                    inputs,
                    cycle: t,
                }));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GateKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_circuit(invert: bool) -> Netlist {
        let mut nl = Netlist::new(if invert { "b" } else { "a" });
        let x = nl.add_input("x");
        let y = nl.add_input("y");
        let kind = if invert {
            GateKind::Xnor
        } else {
            GateKind::Xor
        };
        let o = nl.add_gate(kind, &[x, y], "o").unwrap();
        nl.mark_output(o).unwrap();
        nl
    }

    #[test]
    fn identical_circuits_are_equivalent() {
        let a = xor_circuit(false);
        let b = xor_circuit(false);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_equiv_check(&a, &b, 4, 16, &mut rng)
            .unwrap()
            .is_none());
    }

    #[test]
    fn different_circuits_yield_a_counterexample() {
        let a = xor_circuit(false);
        let b = xor_circuit(true);
        let mut rng = StdRng::seed_from_u64(1);
        let cex = random_equiv_check(&a, &b, 4, 16, &mut rng).unwrap();
        let cex = cex.expect("xor and xnor must differ");
        assert_eq!(cex.cycle, 0);
        assert!(cex.key.is_empty());
    }

    #[test]
    fn key_check_skips_the_key_phase() {
        // Original: out = x. "Locked": after one key cycle the output equals x
        // regardless of key value (trivially correct for any key).
        let mut original = Netlist::new("o");
        let x = original.add_input("x");
        let o = original.add_gate(GateKind::Buf, &[x], "o").unwrap();
        original.mark_output(o).unwrap();

        let mut locked = Netlist::new("l");
        let x = locked.add_input("x");
        let o = locked.add_gate(GateKind::Buf, &[x], "o").unwrap();
        locked.mark_output(o).unwrap();

        let mut rng = StdRng::seed_from_u64(5);
        let key = vec![vec![true]];
        assert!(
            key_restores_function(&original, &locked, &key, 3, 8, &mut rng)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let a = xor_circuit(false);
        let mut b = Netlist::new("one_input");
        let x = b.add_input("x");
        let o = b.add_gate(GateKind::Buf, &[x], "o").unwrap();
        b.mark_output(o).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_equiv_check(&a, &b, 2, 2, &mut rng).is_err());
    }
}
