//! Functional-corruptibility (FC) estimation.
//!
//! The paper (Eq. 1) defines the functional corruptibility of a `b`-unrolled
//! locked circuit as the fraction of `(input sequence, key sequence)` pairs
//! for which at least one output bit differs from the original circuit over
//! the `b` functional cycles following the `κ` key-loading cycles.
//!
//! Exhausting the `2^{(κ+b)|I|}` pairs is infeasible beyond toy circuits, so
//! the paper estimates FC with 800 random samples per configuration; this
//! module implements both the exhaustive and the Monte-Carlo estimator.
//!
//! Both estimators run on the 64-lane [`crate::packed`] engine: the samples
//! of a configuration are packed into ⌈samples/64⌉ word-parallel runs, with
//! one `(input, key)` pair per lane. The stimuli are drawn from the RNG in
//! exactly the per-sample order of the scalar reference implementations
//! ([`estimate_fc_scalar`], [`estimate_fc_for_key_scalar`]), so packed and
//! scalar estimates agree **exactly** for the same seed — a property the
//! differential test suite pins on every benchmark profile.

use rand::Rng;

use netlist::Netlist;

use crate::packed::{self, PackedSimulator, LANES};
use crate::simulator::{check_same_interface, SimError, Simulator};
use crate::stimulus::{self, Sequence};

/// Result of an FC estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FcEstimate {
    /// Estimated functional corruptibility in `[0, 1]`.
    pub fc: f64,
    /// Number of `(input, key)` pairs evaluated.
    pub samples: usize,
    /// Number of pairs that produced at least one output mismatch.
    pub mismatches: usize,
}

/// Runs the locked circuit on `key ++ inputs` and the original circuit on
/// `inputs`, returning `true` if any output bit differs during the functional
/// cycles. This is the scalar single-trace primitive; Monte-Carlo consumers
/// use the packed lane-parallel path instead.
///
/// # Errors
///
/// Propagates simulator errors (interface mismatches).
pub fn outputs_differ(
    original: &mut Simulator<'_>,
    locked: &mut Simulator<'_>,
    key: &[Vec<bool>],
    inputs: &[Vec<bool>],
) -> Result<bool, SimError> {
    original.reset();
    locked.reset();
    for cycle in key {
        locked.step(cycle)?;
    }
    for cycle in inputs {
        let expected = original.step(cycle)?;
        let got = locked.step(cycle)?;
        if expected != got {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Packed analogue of [`outputs_differ`]: runs up to 64 executions at once
/// (`key_words` may differ per lane) and returns the word whose bit *i* is
/// set iff lane *i* observed at least one output mismatch. Only the low
/// `lanes` bits are meaningful.
///
/// # Errors
///
/// Propagates simulator errors (interface mismatches).
fn corrupted_lanes(
    original: &mut PackedSimulator<'_>,
    locked: &mut PackedSimulator<'_>,
    key_words: &[Vec<u64>],
    input_words: &[Vec<u64>],
    lanes: usize,
) -> Result<u64, SimError> {
    let mask = packed::lane_mask(lanes);
    original.reset();
    locked.reset();
    for cycle in key_words {
        locked.step(cycle)?;
    }
    let mut corrupted = 0u64;
    for cycle in input_words {
        let expected = original.step(cycle)?;
        let got = locked.step(cycle)?;
        for (e, g) in expected.iter().zip(&got) {
            corrupted |= e ^ g;
        }
        if corrupted & mask == mask {
            break;
        }
    }
    Ok(corrupted & mask)
}

/// Monte-Carlo FC estimate with `samples` random `(input, key)` pairs, `kappa`
/// key cycles and `cycles` functional cycles (the paper's `b`), evaluated on
/// the 64-lane packed engine (one sample per lane).
///
/// Seeded with the same RNG, this returns the exact same estimate as the
/// scalar reference [`estimate_fc_scalar`].
///
/// # Errors
///
/// Returns [`SimError::InvalidNetlist`] if either netlist fails validation and
/// [`SimError::InputWidthMismatch`] if the two circuits have different
/// primary-input counts.
pub fn estimate_fc<R: Rng + ?Sized>(
    original: &Netlist,
    locked: &Netlist,
    kappa: usize,
    cycles: usize,
    samples: usize,
    rng: &mut R,
) -> Result<FcEstimate, SimError> {
    let mut orig_sim = PackedSimulator::new(original)?;
    let mut lock_sim = PackedSimulator::new(locked)?;
    check_same_interface(original, locked)?;
    let width = original.num_inputs();
    let mut mismatches = 0usize;
    let mut done = 0usize;
    while done < samples {
        let lanes = (samples - done).min(LANES);
        // Draw per sample in the scalar reference order: key, then inputs.
        let mut keys = Vec::with_capacity(lanes);
        let mut inputs = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            keys.push(stimulus::random_sequence(rng, width, kappa));
            inputs.push(stimulus::random_sequence(rng, width, cycles));
        }
        let corrupted = corrupted_lanes(
            &mut orig_sim,
            &mut lock_sim,
            &packed::pack_sequences(&keys),
            &packed::pack_sequences(&inputs),
            lanes,
        )?;
        mismatches += corrupted.count_ones() as usize;
        done += lanes;
    }
    Ok(FcEstimate {
        fc: mismatches as f64 / samples.max(1) as f64,
        samples,
        mismatches,
    })
}

/// Scalar reference implementation of [`estimate_fc`]: one [`Simulator`] run
/// per sample. Kept as the differential-testing baseline for the packed
/// estimator; production callers should use [`estimate_fc`].
///
/// # Errors
///
/// Same contract as [`estimate_fc`].
pub fn estimate_fc_scalar<R: Rng + ?Sized>(
    original: &Netlist,
    locked: &Netlist,
    kappa: usize,
    cycles: usize,
    samples: usize,
    rng: &mut R,
) -> Result<FcEstimate, SimError> {
    let mut orig_sim = Simulator::new(original)?;
    let mut lock_sim = Simulator::new(locked)?;
    check_same_interface(original, locked)?;
    let width = original.num_inputs();
    let mut mismatches = 0;
    for _ in 0..samples {
        let key = stimulus::random_sequence(rng, width, kappa);
        let inputs = stimulus::random_sequence(rng, width, cycles);
        if outputs_differ(&mut orig_sim, &mut lock_sim, &key, &inputs)? {
            mismatches += 1;
        }
    }
    Ok(FcEstimate {
        fc: mismatches as f64 / samples.max(1) as f64,
        samples,
        mismatches,
    })
}

/// FC of a *specific* key over random input sequences: the probability that
/// the locked circuit configured with `key` produces an output error within
/// `cycles` functional cycles. The correct key must yield 0. The key phase is
/// broadcast across all 64 lanes; the random input sequences fill one lane
/// each.
///
/// # Errors
///
/// Propagates simulator and interface errors.
pub fn estimate_fc_for_key<R: Rng + ?Sized>(
    original: &Netlist,
    locked: &Netlist,
    key: &[Vec<bool>],
    cycles: usize,
    samples: usize,
    rng: &mut R,
) -> Result<FcEstimate, SimError> {
    let mut orig_sim = PackedSimulator::new(original)?;
    let mut lock_sim = PackedSimulator::new(locked)?;
    check_same_interface(original, locked)?;
    let width = original.num_inputs();
    let key_words = packed::broadcast_sequence(key);
    let mut mismatches = 0usize;
    let mut done = 0usize;
    while done < samples {
        let lanes = (samples - done).min(LANES);
        let inputs: Vec<Sequence> = (0..lanes)
            .map(|_| stimulus::random_sequence(rng, width, cycles))
            .collect();
        let corrupted = corrupted_lanes(
            &mut orig_sim,
            &mut lock_sim,
            &key_words,
            &packed::pack_sequences(&inputs),
            lanes,
        )?;
        mismatches += corrupted.count_ones() as usize;
        done += lanes;
    }
    Ok(FcEstimate {
        fc: mismatches as f64 / samples.max(1) as f64,
        samples,
        mismatches,
    })
}

/// Scalar reference implementation of [`estimate_fc_for_key`] (differential
/// baseline; agrees exactly with the packed version for the same seed).
///
/// # Errors
///
/// Propagates simulator and interface errors.
pub fn estimate_fc_for_key_scalar<R: Rng + ?Sized>(
    original: &Netlist,
    locked: &Netlist,
    key: &[Vec<bool>],
    cycles: usize,
    samples: usize,
    rng: &mut R,
) -> Result<FcEstimate, SimError> {
    let mut orig_sim = Simulator::new(original)?;
    let mut lock_sim = Simulator::new(locked)?;
    check_same_interface(original, locked)?;
    let width = original.num_inputs();
    let mut mismatches = 0;
    for _ in 0..samples {
        let inputs = stimulus::random_sequence(rng, width, cycles);
        if outputs_differ(&mut orig_sim, &mut lock_sim, key, &inputs)? {
            mismatches += 1;
        }
    }
    Ok(FcEstimate {
        fc: mismatches as f64 / samples.max(1) as f64,
        samples,
        mismatches,
    })
}

/// Exhaustive FC over every `(input, key)` pair; only feasible when
/// `(kappa + cycles) * |I|` is small (paper Fig. 3 scale). The input space of
/// each key is swept 64 values per packed run.
///
/// # Errors
///
/// Returns [`SimError::InvalidNetlist`] for invalid netlists. Panics are
/// avoided by refusing interfaces wider than 24 total bits via
/// [`SimError::InputWidthMismatch`].
pub fn exhaustive_fc(
    original: &Netlist,
    locked: &Netlist,
    kappa: usize,
    cycles: usize,
) -> Result<FcEstimate, SimError> {
    let width = original.num_inputs();
    let key_bits = kappa * width;
    let input_bits = cycles * width;
    if key_bits + input_bits > 24 {
        return Err(SimError::InputWidthMismatch {
            expected: 24,
            got: key_bits + input_bits,
        });
    }
    let mut orig_sim = PackedSimulator::new(original)?;
    let mut lock_sim = PackedSimulator::new(locked)?;
    check_same_interface(original, locked)?;
    let mut mismatches = 0usize;
    let mut samples = 0usize;
    let total_inputs = 1u64 << input_bits;
    for key_value in 0..(1u64 << key_bits) {
        let key = stimulus::sequence_from_value(key_value, width, kappa);
        let key_words = packed::broadcast_sequence(&key);
        let mut base = 0u64;
        while base < total_inputs {
            let lanes = ((total_inputs - base) as usize).min(LANES);
            // Lane l sweeps input value `base + l`.
            let mut input_words = vec![vec![0u64; width]; cycles];
            for l in 0..lanes {
                let value = base + l as u64;
                for (t, cycle_words) in input_words.iter_mut().enumerate() {
                    for (j, word) in cycle_words.iter_mut().enumerate() {
                        *word |= ((value >> (t * width + j)) & 1) << l;
                    }
                }
            }
            let corrupted = corrupted_lanes(
                &mut orig_sim,
                &mut lock_sim,
                &key_words,
                &input_words,
                lanes,
            )?;
            mismatches += corrupted.count_ones() as usize;
            samples += lanes;
            base += lanes as u64;
        }
    }
    Ok(FcEstimate {
        fc: mismatches as f64 / samples.max(1) as f64,
        samples,
        mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GateKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Original: out = in. Locked (toy): out = in XOR wrong_key_bit where the
    /// "key" is the single input during the first cycle and the correct key
    /// is 0 — i.e. applying key 1 corrupts every subsequent output.
    fn original() -> Netlist {
        let mut nl = Netlist::new("orig");
        let a = nl.add_input("a");
        let buf = nl.add_gate(GateKind::Buf, &[a], "o").unwrap();
        nl.mark_output(buf).unwrap();
        nl
    }

    fn locked() -> Netlist {
        let mut nl = Netlist::new("locked");
        let a = nl.add_input("a");
        // Capture the first-cycle input as the key bit: armed register stays 0
        // after the first cycle; captured key is XORed onto the output forever.
        let captured = nl.declare_dff("captured", false).unwrap();
        let armed = nl.declare_dff("armed", true).unwrap();
        // captured' = armed ? a : captured
        let sel = nl
            .add_gate(GateKind::Mux, &[armed, captured, a], "cap_next")
            .unwrap();
        nl.bind_dff(captured, sel).unwrap();
        // armed' = 0
        let zero = nl.add_gate(GateKind::Const0, &[], "zero").unwrap();
        nl.bind_dff(armed, zero).unwrap();
        let out = nl.add_gate(GateKind::Xor, &[a, captured], "o").unwrap();
        nl.mark_output(out).unwrap();
        nl
    }

    #[test]
    fn correct_key_has_zero_fc() {
        let orig = original();
        let lock = locked();
        let mut rng = StdRng::seed_from_u64(7);
        let key = vec![vec![false]]; // correct key: 0
        let est = estimate_fc_for_key(&orig, &lock, &key, 4, 50, &mut rng).unwrap();
        assert_eq!(est.mismatches, 0);
        assert_eq!(est.fc, 0.0);
    }

    #[test]
    fn wrong_key_always_corrupts() {
        let orig = original();
        let lock = locked();
        let mut rng = StdRng::seed_from_u64(7);
        let key = vec![vec![true]];
        let est = estimate_fc_for_key(&orig, &lock, &key, 4, 50, &mut rng).unwrap();
        assert_eq!(est.mismatches, 50);
    }

    #[test]
    fn random_estimate_is_close_to_half() {
        // Half of the keys (the single bit) are wrong and always corrupt, so
        // FC over random keys is ~0.5.
        let orig = original();
        let lock = locked();
        let mut rng = StdRng::seed_from_u64(3);
        let est = estimate_fc(&orig, &lock, 1, 3, 400, &mut rng).unwrap();
        assert!((est.fc - 0.5).abs() < 0.1, "fc = {}", est.fc);
    }

    #[test]
    fn packed_and_scalar_estimates_agree_exactly() {
        let orig = original();
        let lock = locked();
        for samples in [1, 63, 64, 65, 130, 400] {
            let packed_est =
                estimate_fc(&orig, &lock, 1, 3, samples, &mut StdRng::seed_from_u64(11)).unwrap();
            let scalar_est =
                estimate_fc_scalar(&orig, &lock, 1, 3, samples, &mut StdRng::seed_from_u64(11))
                    .unwrap();
            assert_eq!(packed_est, scalar_est, "samples = {samples}");
        }
        let key = vec![vec![true]];
        let packed_est =
            estimate_fc_for_key(&orig, &lock, &key, 4, 100, &mut StdRng::seed_from_u64(5)).unwrap();
        let scalar_est =
            estimate_fc_for_key_scalar(&orig, &lock, &key, 4, 100, &mut StdRng::seed_from_u64(5))
                .unwrap();
        assert_eq!(packed_est, scalar_est);
    }

    #[test]
    fn exhaustive_fc_is_exact() {
        let orig = original();
        let lock = locked();
        let est = exhaustive_fc(&orig, &lock, 1, 3).unwrap();
        // Exactly the 8 input sequences under the wrong key mismatch out of 16.
        assert_eq!(est.samples, 16);
        assert_eq!(est.mismatches, 8);
        assert!((est.fc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exhaustive_fc_sweeps_spaces_wider_than_one_word_batch() {
        // 7 input bits per key → 128 input values → two packed batches; the
        // identity-vs-corrupting pair still yields FC = 0.5 exactly.
        let orig = original();
        let lock = locked();
        let est = exhaustive_fc(&orig, &lock, 1, 7).unwrap();
        assert_eq!(est.samples, 256);
        assert_eq!(est.mismatches, 128);
    }

    #[test]
    fn exhaustive_fc_refuses_huge_spaces() {
        let orig = original();
        let lock = locked();
        assert!(exhaustive_fc(&orig, &lock, 30, 30).is_err());
    }
}
