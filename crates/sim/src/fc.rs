//! Functional-corruptibility (FC) estimation.
//!
//! The paper (Eq. 1) defines the functional corruptibility of a `b`-unrolled
//! locked circuit as the fraction of `(input sequence, key sequence)` pairs
//! for which at least one output bit differs from the original circuit over
//! the `b` functional cycles following the `κ` key-loading cycles.
//!
//! Exhausting the `2^{(κ+b)|I|}` pairs is infeasible beyond toy circuits, so
//! the paper estimates FC with 800 random samples per configuration; this
//! module implements both the exhaustive and the Monte-Carlo estimator.

use rand::Rng;

use netlist::Netlist;

use crate::simulator::{SimError, Simulator};
use crate::stimulus;

/// Result of an FC estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FcEstimate {
    /// Estimated functional corruptibility in `[0, 1]`.
    pub fc: f64,
    /// Number of `(input, key)` pairs evaluated.
    pub samples: usize,
    /// Number of pairs that produced at least one output mismatch.
    pub mismatches: usize,
}

/// Runs the locked circuit on `key ++ inputs` and the original circuit on
/// `inputs`, returning `true` if any output bit differs during the functional
/// cycles.
///
/// # Errors
///
/// Propagates simulator errors (interface mismatches).
pub fn outputs_differ(
    original: &mut Simulator<'_>,
    locked: &mut Simulator<'_>,
    key: &[Vec<bool>],
    inputs: &[Vec<bool>],
) -> Result<bool, SimError> {
    original.reset();
    locked.reset();
    for cycle in key {
        locked.step(cycle)?;
    }
    for cycle in inputs {
        let expected = original.step(cycle)?;
        let got = locked.step(cycle)?;
        if expected != got {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Monte-Carlo FC estimate with `samples` random `(input, key)` pairs, `kappa`
/// key cycles and `cycles` functional cycles (the paper's `b`).
///
/// # Errors
///
/// Returns [`SimError::InvalidNetlist`] if either netlist fails validation and
/// [`SimError::InputWidthMismatch`] if the two circuits have different
/// primary-input counts.
pub fn estimate_fc<R: Rng + ?Sized>(
    original: &Netlist,
    locked: &Netlist,
    kappa: usize,
    cycles: usize,
    samples: usize,
    rng: &mut R,
) -> Result<FcEstimate, SimError> {
    let mut orig_sim = Simulator::new(original)?;
    let mut lock_sim = Simulator::new(locked)?;
    if original.num_inputs() != locked.num_inputs() {
        return Err(SimError::InputWidthMismatch {
            expected: original.num_inputs(),
            got: locked.num_inputs(),
        });
    }
    let width = original.num_inputs();
    let mut mismatches = 0;
    for _ in 0..samples {
        let key = stimulus::random_sequence(rng, width, kappa);
        let inputs = stimulus::random_sequence(rng, width, cycles);
        if outputs_differ(&mut orig_sim, &mut lock_sim, &key, &inputs)? {
            mismatches += 1;
        }
    }
    Ok(FcEstimate {
        fc: mismatches as f64 / samples.max(1) as f64,
        samples,
        mismatches,
    })
}

/// FC of a *specific* key over random input sequences: the probability that
/// the locked circuit configured with `key` produces an output error within
/// `cycles` functional cycles. The correct key must yield 0.
///
/// # Errors
///
/// Propagates simulator and interface errors.
pub fn estimate_fc_for_key<R: Rng + ?Sized>(
    original: &Netlist,
    locked: &Netlist,
    key: &[Vec<bool>],
    cycles: usize,
    samples: usize,
    rng: &mut R,
) -> Result<FcEstimate, SimError> {
    let mut orig_sim = Simulator::new(original)?;
    let mut lock_sim = Simulator::new(locked)?;
    let width = original.num_inputs();
    let mut mismatches = 0;
    for _ in 0..samples {
        let inputs = stimulus::random_sequence(rng, width, cycles);
        if outputs_differ(&mut orig_sim, &mut lock_sim, key, &inputs)? {
            mismatches += 1;
        }
    }
    Ok(FcEstimate {
        fc: mismatches as f64 / samples.max(1) as f64,
        samples,
        mismatches,
    })
}

/// Exhaustive FC over every `(input, key)` pair; only feasible when
/// `(kappa + cycles) * |I|` is small (paper Fig. 3 scale).
///
/// # Errors
///
/// Returns [`SimError::InvalidNetlist`] for invalid netlists. Panics are
/// avoided by refusing interfaces wider than 24 total bits via
/// [`SimError::InputWidthMismatch`].
pub fn exhaustive_fc(
    original: &Netlist,
    locked: &Netlist,
    kappa: usize,
    cycles: usize,
) -> Result<FcEstimate, SimError> {
    let width = original.num_inputs();
    let key_bits = kappa * width;
    let input_bits = cycles * width;
    if key_bits + input_bits > 24 {
        return Err(SimError::InputWidthMismatch {
            expected: 24,
            got: key_bits + input_bits,
        });
    }
    let mut orig_sim = Simulator::new(original)?;
    let mut lock_sim = Simulator::new(locked)?;
    let mut mismatches = 0usize;
    let mut samples = 0usize;
    for key_value in 0..(1u64 << key_bits) {
        let key = stimulus::sequence_from_value(key_value, width, kappa);
        for input_value in 0..(1u64 << input_bits) {
            let inputs = stimulus::sequence_from_value(input_value, width, cycles);
            if outputs_differ(&mut orig_sim, &mut lock_sim, &key, &inputs)? {
                mismatches += 1;
            }
            samples += 1;
        }
    }
    Ok(FcEstimate {
        fc: mismatches as f64 / samples.max(1) as f64,
        samples,
        mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GateKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Original: out = in. Locked (toy): out = in XOR wrong_key_bit where the
    /// "key" is the single input during the first cycle and the correct key
    /// is 0 — i.e. applying key 1 corrupts every subsequent output.
    fn original() -> Netlist {
        let mut nl = Netlist::new("orig");
        let a = nl.add_input("a");
        let buf = nl.add_gate(GateKind::Buf, &[a], "o").unwrap();
        nl.mark_output(buf).unwrap();
        nl
    }

    fn locked() -> Netlist {
        let mut nl = Netlist::new("locked");
        let a = nl.add_input("a");
        // Capture the first-cycle input as the key bit: armed register stays 0
        // after the first cycle; captured key is XORed onto the output forever.
        let captured = nl.declare_dff("captured", false).unwrap();
        let armed = nl.declare_dff("armed", true).unwrap();
        // captured' = armed ? a : captured
        let sel = nl
            .add_gate(GateKind::Mux, &[armed, captured, a], "cap_next")
            .unwrap();
        nl.bind_dff(captured, sel).unwrap();
        // armed' = 0
        let zero = nl.add_gate(GateKind::Const0, &[], "zero").unwrap();
        nl.bind_dff(armed, zero).unwrap();
        let out = nl.add_gate(GateKind::Xor, &[a, captured], "o").unwrap();
        nl.mark_output(out).unwrap();
        nl
    }

    #[test]
    fn correct_key_has_zero_fc() {
        let orig = original();
        let lock = locked();
        let mut rng = StdRng::seed_from_u64(7);
        let key = vec![vec![false]]; // correct key: 0
        let est = estimate_fc_for_key(&orig, &lock, &key, 4, 50, &mut rng).unwrap();
        assert_eq!(est.mismatches, 0);
        assert_eq!(est.fc, 0.0);
    }

    #[test]
    fn wrong_key_always_corrupts() {
        let orig = original();
        let lock = locked();
        let mut rng = StdRng::seed_from_u64(7);
        let key = vec![vec![true]];
        let est = estimate_fc_for_key(&orig, &lock, &key, 4, 50, &mut rng).unwrap();
        assert_eq!(est.mismatches, 50);
    }

    #[test]
    fn random_estimate_is_close_to_half() {
        // Half of the keys (the single bit) are wrong and always corrupt, so
        // FC over random keys is ~0.5.
        let orig = original();
        let lock = locked();
        let mut rng = StdRng::seed_from_u64(3);
        let est = estimate_fc(&orig, &lock, 1, 3, 400, &mut rng).unwrap();
        assert!((est.fc - 0.5).abs() < 0.1, "fc = {}", est.fc);
    }

    #[test]
    fn exhaustive_fc_is_exact() {
        let orig = original();
        let lock = locked();
        let est = exhaustive_fc(&orig, &lock, 1, 3).unwrap();
        // Exactly the 8 input sequences under the wrong key mismatch out of 16.
        assert_eq!(est.samples, 16);
        assert_eq!(est.mismatches, 8);
        assert!((est.fc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exhaustive_fc_refuses_huge_spaces() {
        let orig = original();
        let lock = locked();
        assert!(exhaustive_fc(&orig, &lock, 30, 30).is_err());
    }
}
