//! Cycle-accurate gate-level simulation.
//!
//! This crate drives [`netlist::Netlist`] designs through time:
//!
//! * [`Simulator`] — two-valued, event-free cycle simulation (evaluate the
//!   combinational cloud in topological order, then clock every register).
//! * [`stimulus`] — deterministic pseudo-random input/key sequence generation.
//! * [`fc`] — Monte-Carlo estimation of the *functional corruptibility* of a
//!   locked circuit (paper Eq. 1), mirroring the 800-sample VCS protocol used
//!   in the paper's evaluation.
//! * [`equiv`] — randomized sequential equivalence checking, used to confirm
//!   that the correct key restores the original function and that attacks
//!   recovered a usable key.
//!
//! # Example
//!
//! ```
//! use netlist::{Netlist, GateKind};
//! use sim::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nl = Netlist::new("toggle");
//! let en = nl.add_input("en");
//! let q = nl.declare_dff("q", false)?;
//! let d = nl.add_gate(GateKind::Xor, &[q, en], "d")?;
//! nl.bind_dff(q, d)?;
//! nl.mark_output(q)?;
//!
//! let mut s = Simulator::new(&nl)?;
//! assert_eq!(s.step(&[true])?, vec![false]);
//! assert_eq!(s.step(&[true])?, vec![true]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod simulator;

pub mod equiv;
pub mod fc;
pub mod stimulus;

pub use simulator::{SimError, Simulator};
