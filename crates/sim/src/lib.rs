//! Cycle-accurate gate-level simulation.
//!
//! This crate drives [`netlist::Netlist`] designs through time:
//!
//! * [`Simulator`] — two-valued, event-free cycle simulation (evaluate the
//!   combinational cloud in topological order, then clock every register).
//!   This is the *reference model*: one `bool` per net per cycle.
//! * [`packed`] / [`PackedSimulator`] — the production Monte-Carlo engine:
//!   64 independent simulation lanes packed into one `u64` per net, gates
//!   evaluated with bitwise word operations. Everything that samples many
//!   executions (FC estimation, randomized equivalence, candidate-key
//!   validation) runs on this engine; the scalar simulator remains the
//!   oracle it is differential-tested against (`tests/packed_vs_scalar.rs`).
//! * [`stimulus`] — deterministic pseudo-random input/key sequence generation.
//! * [`fc`] — Monte-Carlo estimation of the *functional corruptibility* of a
//!   locked circuit (paper Eq. 1), mirroring the 800-sample VCS protocol used
//!   in the paper's evaluation — batched into ⌈800/64⌉ packed runs.
//! * [`equiv`] — randomized sequential equivalence checking, used to confirm
//!   that the correct key restores the original function and that attacks
//!   recovered a usable key; 64 sequences per packed pass.
//!
//! # Example
//!
//! ```
//! use netlist::{Netlist, GateKind};
//! use sim::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nl = Netlist::new("toggle");
//! let en = nl.add_input("en");
//! let q = nl.declare_dff("q", false)?;
//! let d = nl.add_gate(GateKind::Xor, &[q, en], "d")?;
//! nl.bind_dff(q, d)?;
//! nl.mark_output(q)?;
//!
//! let mut s = Simulator::new(&nl)?;
//! assert_eq!(s.step(&[true])?, vec![false]);
//! assert_eq!(s.step(&[true])?, vec![true]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod simulator;

pub mod equiv;
pub mod fc;
pub mod packed;
pub mod stimulus;

pub use packed::PackedSimulator;
pub use simulator::{check_same_interface, SimError, Simulator};
