//! 64-lane bit-parallel ("packed") simulation.
//!
//! Every net carries one `u64` word whose bit *i* is the value of that net in
//! *lane* *i* — 64 independent executions of the circuit advance with every
//! [`PackedSimulator::step`]. Gates evaluate with plain bitwise word
//! operations (an `AND` gate is one `&` per extra input, regardless of how
//! many lanes are active), which turns the Monte-Carlo workloads of this
//! repository — FC estimation, randomized equivalence checking, candidate-key
//! validation — into word-parallel sweeps: ⌈800/64⌉ = 13 packed runs replace
//! the paper's 800 scalar simulations per configuration.
//!
//! # Lane semantics
//!
//! * Lane *i* of every input word, output word and register word belongs to
//!   the same execution; lanes never interact.
//! * [`PackedSimulator::reset`] loads every register with its declared reset
//!   value *broadcast across all lanes* (`init == true` ⇒ `u64::MAX`), so all
//!   64 executions start from the architectural reset state.
//! * When fewer than 64 executions are needed, the unused high lanes compute
//!   garbage (whatever stimulus bits were packed there — usually zero);
//!   consumers mask results with [`lane_mask`] before counting or comparing.
//!
//! The scalar [`crate::Simulator`] remains the reference model: the packed
//! engine is differential-tested against it lane by lane (see
//! `tests/packed_vs_scalar.rs`), and single-trace consumers (the SAT attack's
//! DIP oracle queries, counterexample replay) still use the scalar engine.

use netlist::{GateId, NetId, Netlist};

use crate::simulator::SimError;
use crate::stimulus::Sequence;

/// Number of independent simulation lanes packed into one machine word.
pub const LANES: usize = 64;

/// Broadcasts a Boolean across all 64 lanes.
pub fn broadcast(value: bool) -> u64 {
    if value {
        u64::MAX
    } else {
        0
    }
}

/// Word with the low `lanes` bits set — the mask of the active lanes when
/// fewer than [`LANES`] executions are packed into a word.
///
/// # Panics
///
/// Panics if `lanes > 64`.
pub fn lane_mask(lanes: usize) -> u64 {
    assert!(
        lanes <= LANES,
        "at most {LANES} lanes per word, got {lanes}"
    );
    if lanes == LANES {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Value of lane `lane` in `word`.
///
/// # Panics
///
/// Panics if `lane >= 64`.
pub fn lane(word: u64, lane: usize) -> bool {
    assert!(lane < LANES, "lane {lane} out of range");
    (word >> lane) & 1 == 1
}

/// Packs up to 64 scalar stimulus sequences into a packed sequence: the
/// result has one `Vec<u64>` per cycle with one word per primary input, and
/// lane *i* of every word carries `sequences[i]`.
///
/// # Panics
///
/// Panics if more than [`LANES`] sequences are given or if the sequences do
/// not all share the same cycle count and input width.
pub fn pack_sequences(sequences: &[Sequence]) -> Vec<Vec<u64>> {
    assert!(
        sequences.len() <= LANES,
        "at most {LANES} sequences per packed run, got {}",
        sequences.len()
    );
    let Some(first) = sequences.first() else {
        return Vec::new();
    };
    let cycles = first.len();
    let width = first.first().map_or(0, Vec::len);
    let mut packed = vec![vec![0u64; width]; cycles];
    for (l, sequence) in sequences.iter().enumerate() {
        assert_eq!(
            sequence.len(),
            cycles,
            "sequence {l} has a different length"
        );
        for (t, vector) in sequence.iter().enumerate() {
            assert_eq!(
                vector.len(),
                width,
                "cycle {t} of sequence {l} has a different width"
            );
            for (j, &bit) in vector.iter().enumerate() {
                packed[t][j] |= (bit as u64) << l;
            }
        }
    }
    packed
}

/// Packs one scalar sequence broadcast identically into all 64 lanes — the
/// shape of a key-loading phase, where every execution applies the same key.
pub fn broadcast_sequence(sequence: &[Vec<bool>]) -> Vec<Vec<u64>> {
    sequence
        .iter()
        .map(|cycle| cycle.iter().map(|&bit| broadcast(bit)).collect())
        .collect()
}

/// Extracts lane `lane` of a packed per-cycle word matrix (e.g. the outputs
/// of a packed run) back into scalar vectors.
pub fn unpack_lane(words: &[Vec<u64>], lane_index: usize) -> Sequence {
    words
        .iter()
        .map(|cycle| cycle.iter().map(|&w| lane(w, lane_index)).collect())
        .collect()
}

/// Two-valued cycle-accurate simulator evaluating 64 independent executions
/// per step, one per bit of a `u64` word.
///
/// The interface mirrors [`crate::Simulator`] with `bool` replaced by `u64`:
/// construct one per design, call [`PackedSimulator::step`] once per clock
/// cycle with one word per primary input, and read back one word per primary
/// output. See the [module documentation](self) for the lane semantics.
#[derive(Debug, Clone)]
pub struct PackedSimulator<'a> {
    netlist: &'a Netlist,
    order: Vec<GateId>,
    /// Word of every net after the latest combinational evaluation.
    values: Vec<u64>,
    /// Present-state word of every flip-flop.
    state: Vec<u64>,
    cycle: u64,
}

impl<'a> PackedSimulator<'a> {
    /// Creates a packed simulator for `netlist` in the reset state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidNetlist`] if the netlist does not validate
    /// (unbound flip-flops, undriven nets, combinational cycles).
    pub fn new(netlist: &'a Netlist) -> Result<Self, SimError> {
        netlist.validate()?;
        let order = netlist::topo::gate_order(netlist)?;
        let state = netlist.dffs().iter().map(|d| broadcast(d.init)).collect();
        Ok(PackedSimulator {
            netlist,
            order,
            values: vec![0; netlist.num_nets()],
            state,
            cycle: 0,
        })
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Number of clock cycles applied since the last reset.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Restores every register to its reset value in all lanes.
    pub fn reset(&mut self) {
        for (slot, dff) in self.state.iter_mut().zip(self.netlist.dffs()) {
            *slot = broadcast(dff.init);
        }
        self.cycle = 0;
    }

    /// Present-state words of all flip-flops, in [`Netlist::dffs`] order.
    pub fn state(&self) -> &[u64] {
        &self.state
    }

    /// Overrides the present state of every lane at once.
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the number of flip-flops.
    pub fn load_state(&mut self, state: &[u64]) {
        assert_eq!(
            state.len(),
            self.state.len(),
            "state width mismatch when loading packed simulator state"
        );
        self.state.copy_from_slice(state);
    }

    /// Word of an arbitrary net after the most recent
    /// [`PackedSimulator::step`] or [`PackedSimulator::peek_outputs`] call.
    ///
    /// # Panics
    ///
    /// Panics if the net does not belong to the simulated netlist.
    pub fn value(&self, net: NetId) -> u64 {
        self.values[net.index()]
    }

    fn evaluate(&mut self, inputs: &[u64]) -> Result<(), SimError> {
        if inputs.len() != self.netlist.num_inputs() {
            return Err(SimError::InputWidthMismatch {
                expected: self.netlist.num_inputs(),
                got: inputs.len(),
            });
        }
        for (&net, &word) in self.netlist.inputs().iter().zip(inputs) {
            self.values[net.index()] = word;
        }
        for (dff, &word) in self.netlist.dffs().iter().zip(&self.state) {
            self.values[dff.q.index()] = word;
        }
        for &gid in &self.order {
            let gate = self.netlist.gate(gid);
            let word = match gate.kind() {
                netlist::GateKind::Const0 => 0,
                netlist::GateKind::Const1 => u64::MAX,
                netlist::GateKind::Buf => self.values[gate.inputs()[0].index()],
                netlist::GateKind::Not => !self.values[gate.inputs()[0].index()],
                netlist::GateKind::Mux => {
                    let sel = self.values[gate.inputs()[0].index()];
                    let if_false = self.values[gate.inputs()[1].index()];
                    let if_true = self.values[gate.inputs()[2].index()];
                    (sel & if_true) | (!sel & if_false)
                }
                netlist::GateKind::And | netlist::GateKind::Nand => {
                    let conj = gate
                        .inputs()
                        .iter()
                        .fold(u64::MAX, |acc, &n| acc & self.values[n.index()]);
                    if gate.kind() == netlist::GateKind::Nand {
                        !conj
                    } else {
                        conj
                    }
                }
                netlist::GateKind::Or | netlist::GateKind::Nor => {
                    let disj = gate
                        .inputs()
                        .iter()
                        .fold(0, |acc, &n| acc | self.values[n.index()]);
                    if gate.kind() == netlist::GateKind::Nor {
                        !disj
                    } else {
                        disj
                    }
                }
                netlist::GateKind::Xor | netlist::GateKind::Xnor => {
                    let parity = gate
                        .inputs()
                        .iter()
                        .fold(0, |acc, &n| acc ^ self.values[n.index()]);
                    if gate.kind() == netlist::GateKind::Xnor {
                        !parity
                    } else {
                        parity
                    }
                }
            };
            self.values[gate.output().index()] = word;
        }
        Ok(())
    }

    /// Evaluates the combinational logic for the given input words *without*
    /// advancing the registers, and returns the primary output words.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputWidthMismatch`] if `inputs` has the wrong
    /// width.
    pub fn peek_outputs(&mut self, inputs: &[u64]) -> Result<Vec<u64>, SimError> {
        self.evaluate(inputs)?;
        Ok(self
            .netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect())
    }

    /// Applies one clock cycle to all lanes: evaluates the combinational
    /// logic on `inputs`, captures the primary outputs, then clocks every
    /// register.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputWidthMismatch`] if `inputs` has the wrong
    /// width.
    pub fn step(&mut self, inputs: &[u64]) -> Result<Vec<u64>, SimError> {
        self.evaluate(inputs)?;
        let outputs = self
            .netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect();
        for (slot, dff) in self.state.iter_mut().zip(self.netlist.dffs()) {
            let d = dff.d.expect("validated netlist has bound flip-flops");
            *slot = self.values[d.index()];
        }
        self.cycle += 1;
        Ok(outputs)
    }

    /// Runs a whole packed input sequence from the *current* state and
    /// returns the output words of every cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputWidthMismatch`] if any cycle has the wrong
    /// width.
    pub fn run(&mut self, sequence: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, SimError> {
        let mut outputs = Vec::with_capacity(sequence.len());
        for cycle_inputs in sequence {
            outputs.push(self.step(cycle_inputs)?);
        }
        Ok(outputs)
    }

    /// Convenience: reset, then run the packed sequence from the reset state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputWidthMismatch`] if any cycle has the wrong
    /// width.
    pub fn run_from_reset(&mut self, sequence: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, SimError> {
        self.reset();
        self.run(sequence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use netlist::GateKind;

    fn counter2() -> Netlist {
        let mut nl = Netlist::new("cnt2");
        let en = nl.add_input("en");
        let q0 = nl.declare_dff("q0", false).unwrap();
        let q1 = nl.declare_dff("q1", true).unwrap();
        let n0 = nl.add_gate(GateKind::Xor, &[q0, en], "n0").unwrap();
        let c = nl.add_gate(GateKind::And, &[q0, en], "c").unwrap();
        let n1 = nl.add_gate(GateKind::Xor, &[q1, c], "n1").unwrap();
        nl.bind_dff(q0, n0).unwrap();
        nl.bind_dff(q1, n1).unwrap();
        nl.mark_output(q0).unwrap();
        nl.mark_output(q1).unwrap();
        nl
    }

    /// Exercises every gate kind through one netlist.
    fn all_kinds() -> Netlist {
        let mut nl = Netlist::new("kinds");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let s = nl.add_input("s");
        let c0 = nl.add_gate(GateKind::Const0, &[], "c0").unwrap();
        let c1 = nl.add_gate(GateKind::Const1, &[], "c1").unwrap();
        let buf = nl.add_gate(GateKind::Buf, &[a], "buf").unwrap();
        let not = nl.add_gate(GateKind::Not, &[a], "not").unwrap();
        let and = nl.add_gate(GateKind::And, &[a, b, c1], "and").unwrap();
        let nand = nl.add_gate(GateKind::Nand, &[a, b], "nand").unwrap();
        let or = nl.add_gate(GateKind::Or, &[a, b, c0], "or").unwrap();
        let nor = nl.add_gate(GateKind::Nor, &[a, b], "nor").unwrap();
        let xor = nl.add_gate(GateKind::Xor, &[a, b, s], "xor").unwrap();
        let xnor = nl.add_gate(GateKind::Xnor, &[a, b], "xnor").unwrap();
        let mux = nl.add_gate(GateKind::Mux, &[s, a, b], "mux").unwrap();
        for net in [buf, not, and, nand, or, nor, xor, xnor, mux] {
            nl.mark_output(net).unwrap();
        }
        nl
    }

    #[test]
    fn lanes_match_the_scalar_simulator_on_all_gate_kinds() {
        let nl = all_kinds();
        let mut packed = PackedSimulator::new(&nl).unwrap();
        let mut scalar = Simulator::new(&nl).unwrap();
        // 8 lanes sweep all input combinations at once.
        let words: Vec<u64> = (0..3)
            .map(|j| {
                (0..8u64)
                    .map(|v| ((v >> j) & 1) << v)
                    .fold(0, |acc, w| acc | w)
            })
            .collect();
        let packed_out = packed.peek_outputs(&words).unwrap();
        for v in 0..8usize {
            let bits: Vec<bool> = (0..3).map(|j| (v >> j) & 1 == 1).collect();
            let scalar_out = scalar.peek_outputs(&bits).unwrap();
            for (o, &word) in packed_out.iter().enumerate() {
                assert_eq!(
                    lane(word, v),
                    scalar_out[o],
                    "output {o} differs in lane {v}"
                );
            }
        }
    }

    #[test]
    fn registers_reset_to_broadcast_init_values() {
        let nl = counter2();
        let mut packed = PackedSimulator::new(&nl).unwrap();
        assert_eq!(packed.state(), &[0, u64::MAX]);
        packed.step(&[u64::MAX]).unwrap();
        assert_ne!(packed.state(), &[0, u64::MAX]);
        packed.reset();
        assert_eq!(packed.state(), &[0, u64::MAX]);
        assert_eq!(packed.cycle(), 0);
    }

    #[test]
    fn independent_lanes_count_independently() {
        let nl = counter2();
        let mut packed = PackedSimulator::new(&nl).unwrap();
        // Lane 0 counts every cycle, lane 1 never, lane 2 on odd cycles.
        let stim: Vec<Vec<u64>> = (0..4)
            .map(|t| vec![0b001 | if t % 2 == 1 { 0b100 } else { 0 }])
            .collect();
        let out = packed.run_from_reset(&stim).unwrap();
        let mut scalar = Simulator::new(&nl).unwrap();
        for lane_index in 0..3 {
            scalar.reset();
            for (t, cycle) in stim.iter().enumerate() {
                let scalar_out = scalar.step(&[lane(cycle[0], lane_index)]).unwrap();
                for (o, &expected) in scalar_out.iter().enumerate() {
                    assert_eq!(
                        lane(out[t][o], lane_index),
                        expected,
                        "cycle {t} output {o} lane {lane_index}"
                    );
                }
            }
        }
    }

    #[test]
    fn wrong_input_width_is_an_error() {
        let nl = counter2();
        let mut packed = PackedSimulator::new(&nl).unwrap();
        let err = packed.step(&[1, 2]).unwrap_err();
        assert_eq!(
            err,
            SimError::InputWidthMismatch {
                expected: 1,
                got: 2
            }
        );
    }

    #[test]
    fn load_state_overrides_all_lanes() {
        let nl = counter2();
        let mut packed = PackedSimulator::new(&nl).unwrap();
        packed.load_state(&[u64::MAX, 0]);
        let out = packed.peek_outputs(&[0]).unwrap();
        assert_eq!(out, vec![u64::MAX, 0]);
    }

    #[test]
    fn invalid_netlist_is_rejected() {
        let mut nl = Netlist::new("bad");
        nl.declare_dff("q", false).unwrap();
        assert!(matches!(
            PackedSimulator::new(&nl),
            Err(SimError::InvalidNetlist(_))
        ));
    }

    #[test]
    fn pack_round_trips_through_unpack() {
        let sequences: Vec<Sequence> = (0..5u64)
            .map(|s| {
                (0..3)
                    .map(|t| (0..4).map(|j| (s + t + j) % 3 == 0).collect())
                    .collect()
            })
            .collect();
        let packed = pack_sequences(&sequences);
        assert_eq!(packed.len(), 3);
        assert_eq!(packed[0].len(), 4);
        for (l, sequence) in sequences.iter().enumerate() {
            assert_eq!(&unpack_lane(&packed, l), sequence);
        }
        // Unused lanes stay zero.
        assert!(packed.iter().flatten().all(|w| w & !lane_mask(5) == 0));
    }

    #[test]
    fn broadcast_sequence_fills_every_lane() {
        let seq = vec![vec![true, false], vec![false, true]];
        let words = broadcast_sequence(&seq);
        assert_eq!(words, vec![vec![u64::MAX, 0], vec![0, u64::MAX]]);
    }

    #[test]
    fn lane_mask_edges() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(64), u64::MAX);
    }

    #[test]
    fn empty_pack_is_empty() {
        assert!(pack_sequences(&[]).is_empty());
    }
}
