//! The cycle-accurate simulator.

use std::error::Error;
use std::fmt;

use netlist::{GateId, NetId, Netlist, NetlistError};

/// Error produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The netlist failed validation (details inside).
    InvalidNetlist(NetlistError),
    /// The number of input values supplied to a cycle does not match the
    /// number of primary inputs.
    InputWidthMismatch {
        /// Number of primary inputs the netlist has.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// Two compared circuits have different primary-output counts.
    OutputWidthMismatch {
        /// Number of primary outputs of the reference circuit.
        expected: usize,
        /// Number of primary outputs of the compared circuit.
        got: usize,
    },
}

/// Checks that two netlists expose the same primary interface; every
/// cross-circuit comparison entry point (equivalence, FC, key search) calls
/// this before simulating so a shape mismatch fails loudly instead of being
/// truncated away by lane-wise comparisons.
///
/// # Errors
///
/// Returns [`SimError::InputWidthMismatch`] or
/// [`SimError::OutputWidthMismatch`] naming `a` as the reference.
pub fn check_same_interface(a: &Netlist, b: &Netlist) -> Result<(), SimError> {
    if a.num_inputs() != b.num_inputs() {
        return Err(SimError::InputWidthMismatch {
            expected: a.num_inputs(),
            got: b.num_inputs(),
        });
    }
    if a.num_outputs() != b.num_outputs() {
        return Err(SimError::OutputWidthMismatch {
            expected: a.num_outputs(),
            got: b.num_outputs(),
        });
    }
    Ok(())
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidNetlist(e) => write!(f, "invalid netlist: {e}"),
            SimError::InputWidthMismatch { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            SimError::OutputWidthMismatch { expected, got } => {
                write!(f, "expected {expected} primary outputs, got {got}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidNetlist(e) => Some(e),
            SimError::InputWidthMismatch { .. } | SimError::OutputWidthMismatch { .. } => None,
        }
    }
}

impl From<NetlistError> for SimError {
    fn from(e: NetlistError) -> Self {
        SimError::InvalidNetlist(e)
    }
}

/// Two-valued cycle-accurate simulator for a sequential netlist.
///
/// The simulator borrows the netlist; construct one per design and call
/// [`Simulator::step`] once per clock cycle. [`Simulator::reset`] restores all
/// registers to their declared reset values.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Vec<GateId>,
    /// Value of every net after the latest combinational evaluation.
    values: Vec<bool>,
    /// Present-state value of every flip-flop.
    state: Vec<bool>,
    cycle: u64,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for `netlist` in the reset state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidNetlist`] if the netlist does not validate
    /// (unbound flip-flops, undriven nets, combinational cycles).
    pub fn new(netlist: &'a Netlist) -> Result<Self, SimError> {
        netlist.validate()?;
        let order = netlist::topo::gate_order(netlist)?;
        let state = netlist.dffs().iter().map(|d| d.init).collect();
        Ok(Simulator {
            netlist,
            order,
            values: vec![false; netlist.num_nets()],
            state,
            cycle: 0,
        })
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Number of clock cycles applied since the last reset.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Restores every register to its reset value.
    pub fn reset(&mut self) {
        for (slot, dff) in self.state.iter_mut().zip(self.netlist.dffs()) {
            *slot = dff.init;
        }
        self.cycle = 0;
    }

    /// Present-state values of all flip-flops, in [`Netlist::dffs`] order.
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Overrides the present state (useful for reachability experiments).
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the number of flip-flops.
    pub fn load_state(&mut self, state: &[bool]) {
        assert_eq!(
            state.len(),
            self.state.len(),
            "state width mismatch when loading simulator state"
        );
        self.state.copy_from_slice(state);
    }

    /// Value of an arbitrary net after the most recent [`Simulator::step`] or
    /// [`Simulator::peek_outputs`] call.
    ///
    /// # Panics
    ///
    /// Panics if the net does not belong to the simulated netlist.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    fn evaluate(&mut self, inputs: &[bool]) -> Result<(), SimError> {
        if inputs.len() != self.netlist.num_inputs() {
            return Err(SimError::InputWidthMismatch {
                expected: self.netlist.num_inputs(),
                got: inputs.len(),
            });
        }
        for (&net, &value) in self.netlist.inputs().iter().zip(inputs) {
            self.values[net.index()] = value;
        }
        for (dff, &value) in self.netlist.dffs().iter().zip(&self.state) {
            self.values[dff.q.index()] = value;
        }
        for &gid in &self.order {
            let gate = self.netlist.gate(gid);
            let value = match gate.kind() {
                netlist::GateKind::Mux => {
                    let sel = self.values[gate.inputs()[0].index()];
                    let pick = if sel {
                        gate.inputs()[2]
                    } else {
                        gate.inputs()[1]
                    };
                    self.values[pick.index()]
                }
                _ => {
                    // Evaluate via the gate-kind truth function on a small
                    // stack buffer to avoid per-gate allocation.
                    let mut buf = [false; 8];
                    if gate.inputs().len() <= buf.len() {
                        for (slot, &n) in buf.iter_mut().zip(gate.inputs()) {
                            *slot = self.values[n.index()];
                        }
                        gate.kind().eval(&buf[..gate.inputs().len()])
                    } else {
                        let ins: Vec<bool> = gate
                            .inputs()
                            .iter()
                            .map(|&n| self.values[n.index()])
                            .collect();
                        gate.kind().eval(&ins)
                    }
                }
            };
            self.values[gate.output().index()] = value;
        }
        Ok(())
    }

    /// Evaluates the combinational logic for the given input vector *without*
    /// advancing the registers, and returns the primary output values.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputWidthMismatch`] if `inputs` has the wrong
    /// width.
    pub fn peek_outputs(&mut self, inputs: &[bool]) -> Result<Vec<bool>, SimError> {
        self.evaluate(inputs)?;
        Ok(self
            .netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect())
    }

    /// Applies one clock cycle: evaluates the combinational logic on `inputs`,
    /// captures the primary outputs, then clocks every register.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputWidthMismatch`] if `inputs` has the wrong
    /// width.
    pub fn step(&mut self, inputs: &[bool]) -> Result<Vec<bool>, SimError> {
        self.evaluate(inputs)?;
        let outputs = self
            .netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect();
        for (slot, dff) in self.state.iter_mut().zip(self.netlist.dffs()) {
            let d = dff.d.expect("validated netlist has bound flip-flops");
            *slot = self.values[d.index()];
        }
        self.cycle += 1;
        Ok(outputs)
    }

    /// Runs a whole input sequence from the *current* state and returns the
    /// output vector of every cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputWidthMismatch`] if any cycle has the wrong
    /// width.
    pub fn run(&mut self, sequence: &[Vec<bool>]) -> Result<Vec<Vec<bool>>, SimError> {
        let mut outputs = Vec::with_capacity(sequence.len());
        for cycle_inputs in sequence {
            outputs.push(self.step(cycle_inputs)?);
        }
        Ok(outputs)
    }

    /// Convenience: reset, then run the sequence from the reset state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputWidthMismatch`] if any cycle has the wrong
    /// width.
    pub fn run_from_reset(&mut self, sequence: &[Vec<bool>]) -> Result<Vec<Vec<bool>>, SimError> {
        self.reset();
        self.run(sequence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GateKind;

    fn counter2() -> Netlist {
        let mut nl = Netlist::new("cnt2");
        let en = nl.add_input("en");
        let q0 = nl.declare_dff("q0", false).unwrap();
        let q1 = nl.declare_dff("q1", false).unwrap();
        let n0 = nl.add_gate(GateKind::Xor, &[q0, en], "n0").unwrap();
        let c = nl.add_gate(GateKind::And, &[q0, en], "c").unwrap();
        let n1 = nl.add_gate(GateKind::Xor, &[q1, c], "n1").unwrap();
        nl.bind_dff(q0, n0).unwrap();
        nl.bind_dff(q1, n1).unwrap();
        nl.mark_output(q0).unwrap();
        nl.mark_output(q1).unwrap();
        nl
    }

    #[test]
    fn counter_counts_when_enabled() {
        let nl = counter2();
        let mut sim = Simulator::new(&nl).unwrap();
        let mut seen = Vec::new();
        for _ in 0..5 {
            let out = sim.step(&[true]).unwrap();
            seen.push((out[1] as u8) << 1 | out[0] as u8);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 0]);
        assert_eq!(sim.cycle(), 5);
    }

    #[test]
    fn counter_holds_when_disabled() {
        let nl = counter2();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.step(&[true]).unwrap();
        sim.step(&[true]).unwrap();
        let before = sim.state().to_vec();
        sim.step(&[false]).unwrap();
        assert_eq!(sim.state(), &before[..]);
    }

    #[test]
    fn reset_restores_initial_state() {
        let nl = counter2();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.step(&[true]).unwrap();
        sim.reset();
        assert_eq!(sim.state(), &[false, false]);
        assert_eq!(sim.cycle(), 0);
    }

    #[test]
    fn peek_does_not_clock_registers() {
        let nl = counter2();
        let mut sim = Simulator::new(&nl).unwrap();
        let out = sim.peek_outputs(&[true]).unwrap();
        assert_eq!(out, vec![false, false]);
        assert_eq!(sim.state(), &[false, false]);
    }

    #[test]
    fn wrong_input_width_is_an_error() {
        let nl = counter2();
        let mut sim = Simulator::new(&nl).unwrap();
        let err = sim.step(&[true, false]).unwrap_err();
        assert_eq!(
            err,
            SimError::InputWidthMismatch {
                expected: 1,
                got: 2
            }
        );
    }

    #[test]
    fn load_state_overrides_registers() {
        let nl = counter2();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.load_state(&[true, true]);
        let out = sim.peek_outputs(&[false]).unwrap();
        assert_eq!(out, vec![true, true]);
    }

    #[test]
    fn run_from_reset_is_deterministic() {
        let nl = counter2();
        let mut sim = Simulator::new(&nl).unwrap();
        let seq: Vec<Vec<bool>> = vec![vec![true]; 4];
        let a = sim.run_from_reset(&seq).unwrap();
        let b = sim.run_from_reset(&seq).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_netlist_is_rejected() {
        let mut nl = Netlist::new("bad");
        nl.declare_dff("q", false).unwrap();
        assert!(matches!(
            Simulator::new(&nl),
            Err(SimError::InvalidNetlist(_))
        ));
    }
}
