//! Deterministic pseudo-random stimulus generation.
//!
//! All generators take an explicit [`rand::Rng`] so that experiments are
//! reproducible from a seed, matching the methodology of the paper's
//! evaluation (fixed number of random input/key samples per configuration).

use rand::Rng;

/// A multi-cycle stimulus: one `Vec<bool>` of primary-input values per cycle.
pub type Sequence = Vec<Vec<bool>>;

/// Generates a random input vector of the given width.
pub fn random_vector<R: Rng + ?Sized>(rng: &mut R, width: usize) -> Vec<bool> {
    (0..width).map(|_| rng.gen_bool(0.5)).collect()
}

/// Generates a random sequence of `cycles` input vectors of the given width.
pub fn random_sequence<R: Rng + ?Sized>(rng: &mut R, width: usize, cycles: usize) -> Sequence {
    (0..cycles).map(|_| random_vector(rng, width)).collect()
}

/// Encodes an unsigned value as a single input vector (LSB-first), padding
/// with zeros to `width` bits.
///
/// # Panics
///
/// Panics if the value needs more than `width` bits.
pub fn vector_from_value(value: u64, width: usize) -> Vec<bool> {
    assert!(
        width >= 64 - value.leading_zeros() as usize || value == 0,
        "value {value} does not fit in {width} bits"
    );
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

/// Encodes a multi-cycle unsigned value as a sequence: cycle `t` carries bits
/// `[t*width, (t+1)*width)` of `value`, LSB-first within each cycle. This is
/// the enumeration order used when exhaustively sweeping small input/key
/// spaces (paper Fig. 3).
pub fn sequence_from_value(value: u64, width: usize, cycles: usize) -> Sequence {
    (0..cycles)
        .map(|t| {
            (0..width)
                .map(|i| (value >> (t * width + i)) & 1 == 1)
                .collect()
        })
        .collect()
}

/// Flattens a sequence back into the packed unsigned value used by
/// [`sequence_from_value`].
///
/// # Panics
///
/// Panics if the sequence packs to more than 64 bits.
pub fn value_from_sequence(sequence: &[Vec<bool>]) -> u64 {
    let total: usize = sequence.iter().map(Vec::len).sum();
    assert!(total <= 64, "sequence too wide to pack into u64");
    let mut value = 0u64;
    let mut bit = 0;
    for cycle in sequence {
        for &b in cycle {
            value |= (b as u64) << bit;
            bit += 1;
        }
    }
    value
}

/// Concatenates two sequences (e.g. a key sequence followed by a functional
/// input sequence).
pub fn concat(a: &[Vec<bool>], b: &[Vec<bool>]) -> Sequence {
    a.iter().chain(b.iter()).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_sequence_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let seq = random_sequence(&mut rng, 5, 7);
        assert_eq!(seq.len(), 7);
        assert!(seq.iter().all(|v| v.len() == 5));
    }

    #[test]
    fn same_seed_same_stimulus() {
        let a = random_sequence(&mut StdRng::seed_from_u64(42), 8, 16);
        let b = random_sequence(&mut StdRng::seed_from_u64(42), 8, 16);
        assert_eq!(a, b);
    }

    #[test]
    fn value_round_trip() {
        for v in 0..64u64 {
            let seq = sequence_from_value(v, 3, 2);
            assert_eq!(value_from_sequence(&seq), v);
        }
    }

    #[test]
    fn vector_from_value_is_lsb_first() {
        assert_eq!(vector_from_value(5, 4), vec![true, false, true, false]);
    }

    #[test]
    fn concat_preserves_order() {
        let a = sequence_from_value(1, 2, 1);
        let b = sequence_from_value(2, 2, 1);
        let joined = concat(&a, &b);
        assert_eq!(joined.len(), 2);
        assert_eq!(joined[0], a[0]);
        assert_eq!(joined[1], b[0]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        vector_from_value(16, 4);
    }
}
