//! FC-estimator invariance: the packed Monte-Carlo estimator must be
//! indistinguishable from the scalar reference — not statistically, but
//! *exactly*, sample for sample — when seeded with the same stimulus stream,
//! and its results must always be well-formed probabilities.
//!
//! Runs on a scaled-down circuit of every Table I benchgen profile, both
//! against an equivalent circuit (FC must be 0) and against an inequivalent
//! one of identical interface (FC-rich comparison).

use benchgen::{generate_scaled, TABLE1_PROFILES};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::stimulus;

const SAMPLES: usize = 150; // deliberately not a multiple of 64

#[test]
fn packed_and_scalar_fc_agree_exactly_on_every_profile() {
    for (index, profile) in TABLE1_PROFILES.iter().enumerate() {
        let original = generate_scaled(profile, 64, 11).expect("circuit builds");
        let other = generate_scaled(profile, 64, 12).expect("circuit builds");
        for (locked, label) in [(&original, "self"), (&other, "other")] {
            for kappa in [0usize, 2] {
                let seed = 0xFC0 ^ (index as u64) << 4 ^ kappa as u64;
                let packed_est = sim::fc::estimate_fc(
                    &original,
                    locked,
                    kappa,
                    4,
                    SAMPLES,
                    &mut StdRng::seed_from_u64(seed),
                )
                .expect("packed estimate runs");
                let scalar_est = sim::fc::estimate_fc_scalar(
                    &original,
                    locked,
                    kappa,
                    4,
                    SAMPLES,
                    &mut StdRng::seed_from_u64(seed),
                )
                .expect("scalar estimate runs");
                assert_eq!(
                    packed_est, scalar_est,
                    "profile {} vs {label}, kappa {kappa}: packed and scalar disagree",
                    profile.name
                );
            }
        }
    }
}

#[test]
fn fc_estimates_are_well_formed_probabilities_on_every_profile() {
    for (index, profile) in TABLE1_PROFILES.iter().enumerate() {
        let original = generate_scaled(profile, 64, 21).expect("circuit builds");
        let other = generate_scaled(profile, 64, 22).expect("circuit builds");
        let mut rng = StdRng::seed_from_u64(31 + index as u64);
        let est = sim::fc::estimate_fc(&original, &other, 1, 5, SAMPLES, &mut rng)
            .expect("estimate runs");
        assert_eq!(est.samples, SAMPLES, "profile {}", profile.name);
        assert!(
            est.mismatches <= est.samples,
            "profile {}: {} mismatches > {} samples",
            profile.name,
            est.mismatches,
            est.samples
        );
        assert!(
            (0.0..=1.0).contains(&est.fc),
            "profile {}: fc = {}",
            profile.name,
            est.fc
        );
        assert!(
            (est.fc - est.mismatches as f64 / est.samples as f64).abs() < 1e-12,
            "profile {}: fc inconsistent with counts",
            profile.name
        );

        // A circuit with an empty key phase compared against itself never
        // mismatches — register resets included.
        let est = sim::fc::estimate_fc(&original, &original, 0, 5, SAMPLES, &mut rng)
            .expect("estimate runs");
        assert_eq!(est.mismatches, 0, "profile {}", profile.name);
        assert_eq!(est.fc, 0.0, "profile {}", profile.name);
    }
}

#[test]
fn per_key_estimates_agree_with_the_scalar_reference() {
    for (index, profile) in TABLE1_PROFILES.iter().enumerate().take(5) {
        let original = generate_scaled(profile, 64, 41).expect("circuit builds");
        let other = generate_scaled(profile, 64, 42).expect("circuit builds");
        let width = original.num_inputs();
        let mut key_rng = StdRng::seed_from_u64(43);
        let key = stimulus::random_sequence(&mut key_rng, width, 2);
        let seed = 0x5EED + index as u64;
        let packed_est = sim::fc::estimate_fc_for_key(
            &original,
            &other,
            &key,
            4,
            SAMPLES,
            &mut StdRng::seed_from_u64(seed),
        )
        .expect("packed estimate runs");
        let scalar_est = sim::fc::estimate_fc_for_key_scalar(
            &original,
            &other,
            &key,
            4,
            SAMPLES,
            &mut StdRng::seed_from_u64(seed),
        )
        .expect("scalar estimate runs");
        assert_eq!(packed_est, scalar_est, "profile {}", profile.name);
    }
}
