//! Differential test harness: the 64-lane packed simulator must agree with
//! the scalar reference simulator bit-for-bit, lane by lane.
//!
//! Circuits come from the `benchgen` generator (every Table I profile shape,
//! scaled down), stimuli are random multi-cycle sequences, and the checked
//! protocol mirrors the repository's real workloads: an optional broadcast
//! key-loading phase followed by per-lane functional inputs, with register
//! reset values (including non-zero inits) and final register state compared
//! as well. Any divergence between the packed engine and the reference
//! semantics fails here before it can skew an experiment.

use proptest::prelude::*;

use benchgen::{generate_scaled, TABLE1_PROFILES};
use netlist::Netlist;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::stimulus::{self, Sequence};
use sim::{packed, PackedSimulator, Simulator};

/// A scaled-down circuit of the given Table I profile; `flip_inits` sets the
/// reset value of every other register to 1 so non-zero reset state is
/// exercised too (benchgen itself initializes every register to 0).
fn profile_circuit(profile_index: usize, flip_inits: bool, seed: u64) -> Netlist {
    let profile = &TABLE1_PROFILES[profile_index % TABLE1_PROFILES.len()];
    let mut nl = generate_scaled(profile, 64, seed).expect("benchgen circuit builds");
    if flip_inits {
        let ids: Vec<_> = nl.dff_ids().collect();
        for (i, id) in ids.into_iter().enumerate() {
            if i % 2 == 0 {
                nl.dff_mut(id).init = true;
            }
        }
    }
    nl
}

/// Runs the packed simulator once (broadcast key phase, then per-lane
/// functional sequences) and checks every lane and the final register state
/// against an independent scalar run of the same sequence.
fn assert_lanes_match_scalar(
    nl: &Netlist,
    key: &Sequence,
    sequences: &[Sequence],
) -> Result<(), TestCaseError> {
    let mut packed_sim = PackedSimulator::new(nl).expect("packed simulator builds");
    packed_sim.reset();
    let mut packed_outputs = Vec::new();
    for cycle in &packed::broadcast_sequence(key) {
        packed_outputs.push(packed_sim.step(cycle).expect("key cycle steps"));
    }
    for cycle in &packed::pack_sequences(sequences) {
        packed_outputs.push(packed_sim.step(cycle).expect("functional cycle steps"));
    }
    let packed_state = packed_sim.state().to_vec();

    let mut scalar = Simulator::new(nl).expect("scalar simulator builds");
    for (lane, sequence) in sequences.iter().enumerate() {
        scalar.reset();
        let full = stimulus::concat(key, sequence);
        let scalar_outputs = scalar.run(&full).expect("scalar run");
        prop_assert_eq!(scalar_outputs.len(), packed_outputs.len());
        for (t, cycle_outputs) in scalar_outputs.iter().enumerate() {
            for (o, &bit) in cycle_outputs.iter().enumerate() {
                prop_assert_eq!(
                    packed::lane(packed_outputs[t][o], lane),
                    bit,
                    "lane {} cycle {} output {} diverged",
                    lane,
                    t,
                    o
                );
            }
        }
        for (r, &word) in packed_state.iter().enumerate() {
            prop_assert_eq!(
                packed::lane(word, lane),
                scalar.state()[r],
                "lane {} register {} final state diverged",
                lane,
                r
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random profile shape × random stimulus: every packed lane reproduces
    /// the scalar simulation of its sequence, including the broadcast
    /// multi-cycle key phase, non-zero register resets and final state.
    #[test]
    fn every_lane_reproduces_a_scalar_run(
        profile_index in 0usize..TABLE1_PROFILES.len(),
        flip_inits in any::<bool>(),
        circuit_seed in 0u64..1024,
        stimulus_seed in any::<u64>(),
        lanes in 1usize..=64,
        kappa in 0usize..=2,
        cycles in 1usize..=6,
    ) {
        let nl = profile_circuit(profile_index, flip_inits, circuit_seed);
        let width = nl.num_inputs();
        let mut rng = StdRng::seed_from_u64(stimulus_seed);
        let key = stimulus::random_sequence(&mut rng, width, kappa);
        let sequences: Vec<Sequence> = (0..lanes)
            .map(|_| stimulus::random_sequence(&mut rng, width, cycles))
            .collect();
        assert_lanes_match_scalar(&nl, &key, &sequences)?;
    }

    /// The packed equivalence checker returns exactly the counterexample the
    /// scalar reference finds (first-drawn mismatching sequence, earliest
    /// cycle) — or agrees that none exists — on circuit pairs of the same
    /// interface.
    #[test]
    fn packed_equiv_check_matches_the_scalar_reference(
        profile_index in 0usize..TABLE1_PROFILES.len(),
        seed_a in 0u64..512,
        seed_delta in 0u64..2,
        check_seed in any::<u64>(),
        sequences in 1usize..100,
    ) {
        // seed_delta = 0 compares a circuit against itself (must be
        // equivalent); 1 compares different circuits of identical interface
        // (virtually always inequivalent).
        let a = profile_circuit(profile_index, false, seed_a);
        let b = profile_circuit(profile_index, false, seed_a + seed_delta);
        let packed_cex = sim::equiv::random_equiv_check(
            &a, &b, 4, sequences, &mut StdRng::seed_from_u64(check_seed),
        ).expect("packed check runs");
        let scalar_cex = sim::equiv::random_equiv_check_scalar(
            &a, &b, 4, sequences, &mut StdRng::seed_from_u64(check_seed),
        ).expect("scalar check runs");
        prop_assert_eq!(&packed_cex, &scalar_cex);
        if seed_delta == 0 {
            prop_assert!(packed_cex.is_none(), "a circuit differs from itself");
        }
    }
}

/// Deterministic sweep pinning the differential property on *every* Table I
/// profile (the proptest above samples profiles randomly).
#[test]
fn all_profiles_agree_packed_vs_scalar() {
    for (index, profile) in TABLE1_PROFILES.iter().enumerate() {
        let nl = profile_circuit(index, index % 2 == 1, 7);
        let width = nl.num_inputs();
        let mut rng = StdRng::seed_from_u64(0xD1FF ^ index as u64);
        let key = stimulus::random_sequence(&mut rng, width, 2);
        let sequences: Vec<Sequence> = (0..64)
            .map(|_| stimulus::random_sequence(&mut rng, width, 5))
            .collect();
        assert_lanes_match_scalar(&nl, &key, &sequences)
            .unwrap_or_else(|e| panic!("profile {}: {e}", profile.name));
    }
}

/// `key_restores_function` (packed) and its scalar reference return the same
/// verdict and the same counterexample on locked-circuit-shaped comparisons.
#[test]
fn packed_key_validation_matches_the_scalar_reference() {
    for (index, profile) in TABLE1_PROFILES.iter().enumerate().take(4) {
        let original = profile_circuit(index, false, 3);
        let corrupted = profile_circuit(index, false, 4);
        let width = original.num_inputs();
        let mut key_rng = StdRng::seed_from_u64(21);
        let key = stimulus::random_sequence(&mut key_rng, width, 2);
        for (a, b) in [(&original, &original), (&original, &corrupted)] {
            let packed_cex = sim::equiv::key_restores_function(
                a,
                b,
                &key,
                6,
                80,
                &mut StdRng::seed_from_u64(33),
            )
            .expect("packed validation runs");
            let scalar_cex = sim::equiv::key_restores_function_scalar(
                a,
                b,
                &key,
                6,
                80,
                &mut StdRng::seed_from_u64(33),
            )
            .expect("scalar validation runs");
            assert_eq!(packed_cex, scalar_cex, "profile {}", profile.name);
        }
    }
}
