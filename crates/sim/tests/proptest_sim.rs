//! Property-based tests for the simulator: unrolled evaluation agrees with
//! sequential simulation, resets are idempotent, and the FC estimator is a
//! probability.

use proptest::prelude::*;

use netlist::{GateKind, Netlist};
use sim::{stimulus, Simulator};

/// Builds a small sequential circuit parameterized by a few recipe bytes.
fn build_circuit(recipes: &[(u8, u8, u8)]) -> Netlist {
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Xor,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xnor,
    ];
    let mut nl = Netlist::new("prop_sim");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let q0 = nl.declare_dff("q0", false).expect("unique");
    let q1 = nl.declare_dff("q1", true).expect("unique");
    let mut nets = vec![a, b, q0, q1];
    for (g, &(kind_pick, x, y)) in recipes.iter().enumerate() {
        let kind = kinds[kind_pick as usize % kinds.len()];
        let pick = |v: u8| nets[v as usize % nets.len()];
        let out = nl
            .add_gate(kind, &[pick(x), pick(y)], format!("g{g}"))
            .expect("arity ok");
        nets.push(out);
    }
    let last = *nets.last().expect("non-empty");
    let second_last = nets[nets.len().saturating_sub(2)];
    nl.bind_dff(q0, last).expect("first binding");
    nl.bind_dff(q1, second_last).expect("first binding");
    nl.mark_output(last).expect("output");
    nl.mark_output(q0).expect("output");
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The unrolled circuit computes exactly the same outputs as stepping the
    /// sequential simulator cycle by cycle.
    #[test]
    fn unrolled_evaluation_matches_sequential_simulation(
        recipes in proptest::collection::vec(any::<(u8, u8, u8)>(), 1..12),
        stimulus_bits in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let nl = build_circuit(&recipes);
        let cycles = stimulus_bits.len() / nl.num_inputs();
        let stimulus: Vec<Vec<bool>> = stimulus_bits
            .chunks(nl.num_inputs())
            .take(cycles)
            .map(<[bool]>::to_vec)
            .collect();

        let mut seq = Simulator::new(&nl).expect("valid netlist");
        let sequential = seq.run_from_reset(&stimulus).expect("runs");

        let unrolled = netlist::unroll::unroll(&nl, cycles).expect("unrolls");
        let mut comb = Simulator::new(&unrolled.netlist).expect("combinational sim");
        let mut flat = vec![false; unrolled.netlist.num_inputs()];
        for (t, cycle) in stimulus.iter().enumerate() {
            for (i, &bit) in cycle.iter().enumerate() {
                let net = unrolled.inputs[t][i];
                let pos = unrolled
                    .netlist
                    .inputs()
                    .iter()
                    .position(|n| *n == net)
                    .expect("input present");
                flat[pos] = bit;
            }
        }
        let outputs = comb.peek_outputs(&flat).expect("evaluates");
        let flattened_sequential: Vec<bool> = sequential.into_iter().flatten().collect();
        prop_assert_eq!(outputs, flattened_sequential);
    }

    /// Reset brings the simulator back to a state from which behaviour is
    /// reproducible.
    #[test]
    fn reset_makes_runs_reproducible(
        recipes in proptest::collection::vec(any::<(u8, u8, u8)>(), 1..10),
        seed in any::<u64>(),
    ) {
        let nl = build_circuit(&recipes);
        let mut sim = Simulator::new(&nl).expect("valid netlist");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let stimulus = stimulus::random_sequence(&mut rng, nl.num_inputs(), 6);
        let first = sim.run_from_reset(&stimulus).expect("runs");
        let second = sim.run_from_reset(&stimulus).expect("runs");
        prop_assert_eq!(first, second);
    }

    /// The FC estimator always returns a probability and is zero for a
    /// circuit compared against itself.
    #[test]
    fn fc_estimates_are_probabilities(
        recipes in proptest::collection::vec(any::<(u8, u8, u8)>(), 1..10),
        seed in any::<u64>(),
    ) {
        let nl = build_circuit(&recipes);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // A circuit compared against itself with an empty key phase (κ = 0)
        // must never mismatch.
        let est = sim::fc::estimate_fc(&nl, &nl, 0, 3, 40, &mut rng).expect("estimates");
        prop_assert!(est.fc >= 0.0 && est.fc <= 1.0);
        prop_assert_eq!(est.mismatches, 0);
    }
}
