//! Construction of the register connection graph.

use std::collections::BTreeSet;

use netlist::{cone, DffId, Netlist, RegClass};

/// The register connection graph of a sequential netlist.
///
/// Node `i` corresponds to flip-flop `i` of the source netlist (same index as
/// [`Netlist::dffs`]). An edge `a → b` means that a purely combinational path
/// exists from the `Q` output of register `a` to the `D` input of register
/// `b`, i.e. the present state of `a` can influence the next state of `b`
/// within one clock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterGraph {
    /// Adjacency list: `successors[a]` holds every `b` with an edge `a → b`.
    successors: Vec<Vec<usize>>,
    /// Reverse adjacency list.
    predecessors: Vec<Vec<usize>>,
    /// Provenance tag of each register, copied from the netlist.
    classes: Vec<RegClass>,
}

impl RegisterGraph {
    /// Builds the RCG of `netlist`.
    pub fn build(netlist: &Netlist) -> Self {
        let n = netlist.num_dffs();
        let mut successors: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        // One traversal scratch shared across all n cone walks.
        let mut scratch = cone::ConeScratch::new();
        for target in 0..n {
            let sources =
                cone::register_fanin_with(netlist, DffId::from_index(target), &mut scratch);
            for src in sources {
                successors[src.index()].insert(target);
            }
        }
        let successors: Vec<Vec<usize>> = successors
            .into_iter()
            .map(|set| set.into_iter().collect())
            .collect();
        let mut predecessors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (src, succs) in successors.iter().enumerate() {
            for &dst in succs {
                predecessors[dst].push(src);
            }
        }
        let classes = netlist.dffs().iter().map(|d| d.class).collect();
        RegisterGraph {
            successors,
            predecessors,
            classes,
        }
    }

    /// Builds a graph directly from adjacency data (mostly for tests and for
    /// synthetic experiments).
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node out of range or if `classes` has a
    /// different length than the adjacency list.
    pub fn from_edges(num_nodes: usize, edges: &[(usize, usize)], classes: Vec<RegClass>) -> Self {
        assert_eq!(classes.len(), num_nodes, "one class per node required");
        let mut successors: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); num_nodes];
        for &(a, b) in edges {
            assert!(
                a < num_nodes && b < num_nodes,
                "edge ({a},{b}) out of range"
            );
            successors[a].insert(b);
        }
        let successors: Vec<Vec<usize>> = successors
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect();
        let mut predecessors: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
        for (src, succs) in successors.iter().enumerate() {
            for &dst in succs {
                predecessors[dst].push(src);
            }
        }
        RegisterGraph {
            successors,
            predecessors,
            classes,
        }
    }

    /// Number of registers (nodes).
    pub fn num_nodes(&self) -> usize {
        self.successors.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.successors.iter().map(Vec::len).sum()
    }

    /// Successors of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn successors(&self, node: usize) -> &[usize] {
        &self.successors[node]
    }

    /// Predecessors of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn predecessors(&self, node: usize) -> &[usize] {
        &self.predecessors[node]
    }

    /// Provenance class of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn class(&self, node: usize) -> RegClass {
        self.classes[node]
    }

    /// Total degree (in + out) of a node, the "number of edges" criterion used
    /// by Algorithm 1 when picking the representative register of an SCC.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: usize) -> usize {
        self.successors[node].len() + self.predecessors[node].len()
    }

    /// `true` if the graph has an edge `a → b`.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.successors[a].binary_search(&b).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GateKind;

    /// r0 -> r1 -> r2 -> r0 ring plus an isolated register r3 fed by an input.
    fn ring_netlist() -> Netlist {
        let mut nl = Netlist::new("ring");
        let a = nl.add_input("a");
        let q0 = nl.declare_dff("q0", false).unwrap();
        let q1 = nl.declare_dff("q1", false).unwrap();
        let q2 = nl.declare_dff("q2", false).unwrap();
        let q3 = nl
            .declare_dff_with_class("q3", false, RegClass::Locking)
            .unwrap();
        let d1 = nl.add_gate(GateKind::Buf, &[q0], "d1").unwrap();
        let d2 = nl.add_gate(GateKind::Not, &[q1], "d2").unwrap();
        let d0 = nl.add_gate(GateKind::And, &[q2, a], "d0").unwrap();
        let d3 = nl.add_gate(GateKind::Not, &[a], "d3").unwrap();
        nl.bind_dff(q0, d0).unwrap();
        nl.bind_dff(q1, d1).unwrap();
        nl.bind_dff(q2, d2).unwrap();
        nl.bind_dff(q3, d3).unwrap();
        nl.mark_output(q2).unwrap();
        nl.mark_output(q3).unwrap();
        nl
    }

    #[test]
    fn rcg_of_ring_has_ring_edges_only() {
        let nl = ring_netlist();
        let g = RegisterGraph::build(&nl);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 2));
        assert!(g.successors(3).is_empty());
        assert!(g.predecessors(3).is_empty());
        assert_eq!(g.class(3), RegClass::Locking);
        assert_eq!(g.class(0), RegClass::Original);
    }

    #[test]
    fn degree_counts_both_directions() {
        let nl = ring_netlist();
        let g = RegisterGraph::build(&nl);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn from_edges_deduplicates() {
        let g =
            RegisterGraph::from_edges(3, &[(0, 1), (0, 1), (1, 2)], vec![RegClass::Original; 3]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.predecessors(2), &[1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_bad_nodes() {
        RegisterGraph::from_edges(2, &[(0, 5)], vec![RegClass::Original; 2]);
    }

    #[test]
    fn self_loop_when_register_feeds_itself() {
        let mut nl = Netlist::new("self");
        let q = nl.declare_dff("q", false).unwrap();
        let d = nl.add_gate(GateKind::Not, &[q], "d").unwrap();
        nl.bind_dff(q, d).unwrap();
        nl.mark_output(q).unwrap();
        let g = RegisterGraph::build(&nl);
        assert!(g.has_edge(0, 0));
        assert_eq!(g.num_edges(), 1);
    }
}
