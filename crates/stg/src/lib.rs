//! Register connection graph (RCG) analysis.
//!
//! The removal-attack analysis of the paper (Section III-C, Table II) works on
//! the *register connection graph*: one node per flip-flop and a directed edge
//! `r1 → r2` whenever a combinational path leads from the `Q` pin of `r1` to
//! the `D` pin of `r2`. Strongly connected components (SCCs) of this graph are
//! then classified by the provenance of the registers they contain:
//!
//! * **O-SCC** — only original registers,
//! * **E-SCC** — only registers added by the locking scheme,
//! * **M-SCC** — a mix of both (what state re-encoding tries to create).
//!
//! This crate builds the RCG from a [`netlist::Netlist`], computes SCCs with
//! Tarjan's algorithm, and produces the classification report used both by
//! Algorithm 1 (the register-pair selection of state re-encoding) and by the
//! Table II evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod scc;

pub mod transition;

pub use graph::RegisterGraph;
pub use scc::{classify_sccs, tarjan_scc, Scc, SccClass, SccReport};
