//! Tarjan's strongly-connected-components algorithm and SCC classification.

use std::fmt;

use netlist::RegClass;

use crate::graph::RegisterGraph;

/// Classification of an SCC by the provenance of its registers (paper
/// Section III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SccClass {
    /// Contains only original registers.
    Original,
    /// Contains only registers added by the locking scheme.
    Extra,
    /// Contains both kinds (or re-encoded registers): the attacker cannot
    /// split it by connectivity alone.
    Mixed,
}

impl fmt::Display for SccClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SccClass::Original => "O-SCC",
            SccClass::Extra => "E-SCC",
            SccClass::Mixed => "M-SCC",
        };
        f.write_str(s)
    }
}

/// One strongly connected component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scc {
    /// Node (register) indices belonging to the component.
    pub nodes: Vec<usize>,
    /// Classification of the component.
    pub class: SccClass,
}

impl Scc {
    /// Number of registers in the component.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the component is empty (never produced by the algorithm).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Aggregate report over all SCCs of an RCG — the row format of the paper's
/// Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct SccReport {
    /// All components, largest first.
    pub sccs: Vec<Scc>,
    /// Number of O-SCCs.
    pub num_original: usize,
    /// Number of E-SCCs.
    pub num_extra: usize,
    /// Number of M-SCCs.
    pub num_mixed: usize,
    /// Percentage (0–100) of registers that live in some M-SCC (`P_M`).
    pub percent_in_mixed: f64,
}

impl SccReport {
    /// Total number of registers covered by the report.
    pub fn num_registers(&self) -> usize {
        self.sccs.iter().map(Scc::len).sum()
    }

    /// The largest component of a given class, if any.
    pub fn largest_of(&self, class: SccClass) -> Option<&Scc> {
        self.sccs.iter().find(|s| s.class == class)
    }
}

/// Computes the strongly connected components of the graph with Tarjan's
/// algorithm (iterative formulation, so deep graphs cannot overflow the call
/// stack). Components are returned in reverse topological order of the
/// condensation, each as a sorted list of node indices.
pub fn tarjan_scc(graph: &RegisterGraph) -> Vec<Vec<usize>> {
    let n = graph.num_nodes();
    const UNVISITED: usize = usize::MAX;
    let mut index_of = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS state: (node, next successor position to explore).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index_of[start] != UNVISITED {
            continue;
        }
        call_stack.push((start, 0));
        index_of[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (node, ref mut succ_pos)) = call_stack.last_mut() {
            if *succ_pos < graph.successors(node).len() {
                let succ = graph.successors(node)[*succ_pos];
                *succ_pos += 1;
                if index_of[succ] == UNVISITED {
                    index_of[succ] = next_index;
                    lowlink[succ] = next_index;
                    next_index += 1;
                    stack.push(succ);
                    on_stack[succ] = true;
                    call_stack.push((succ, 0));
                } else if on_stack[succ] {
                    lowlink[node] = lowlink[node].min(index_of[succ]);
                }
            } else {
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[node]);
                }
                if lowlink[node] == index_of[node] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component.push(w);
                        if w == node {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
            }
        }
    }
    components
}

fn classify_component(graph: &RegisterGraph, nodes: &[usize]) -> SccClass {
    let mut has_original = false;
    let mut has_extra = false;
    for &n in nodes {
        match graph.class(n) {
            RegClass::Original => has_original = true,
            RegClass::Locking => has_extra = true,
            // Re-encoded registers blend original and locking state, so any
            // component containing one is by definition mixed.
            RegClass::Encoded => {
                has_original = true;
                has_extra = true;
            }
        }
    }
    match (has_original, has_extra) {
        (true, true) => SccClass::Mixed,
        (true, false) => SccClass::Original,
        (false, true) => SccClass::Extra,
        (false, false) => SccClass::Original,
    }
}

/// Runs SCC detection and classifies every component, producing the Table II
/// style report. Components are sorted by size, largest first.
pub fn classify_sccs(graph: &RegisterGraph) -> SccReport {
    let mut sccs: Vec<Scc> = tarjan_scc(graph)
        .into_iter()
        .map(|nodes| {
            let class = classify_component(graph, &nodes);
            Scc { nodes, class }
        })
        .collect();
    sccs.sort_by_key(|s| std::cmp::Reverse(s.len()));
    let num_original = sccs
        .iter()
        .filter(|s| s.class == SccClass::Original)
        .count();
    let num_extra = sccs.iter().filter(|s| s.class == SccClass::Extra).count();
    let num_mixed = sccs.iter().filter(|s| s.class == SccClass::Mixed).count();
    let total: usize = sccs.iter().map(Scc::len).sum();
    let in_mixed: usize = sccs
        .iter()
        .filter(|s| s.class == SccClass::Mixed)
        .map(Scc::len)
        .sum();
    let percent_in_mixed = if total == 0 {
        0.0
    } else {
        100.0 * in_mixed as f64 / total as f64
    };
    SccReport {
        sccs,
        num_original,
        num_extra,
        num_mixed,
        percent_in_mixed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes(original: usize, locking: usize) -> Vec<RegClass> {
        let mut v = vec![RegClass::Original; original];
        v.extend(std::iter::repeat_n(RegClass::Locking, locking));
        v
    }

    #[test]
    fn single_cycle_is_one_component() {
        let g = RegisterGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)], classes(3, 0));
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0], vec![0, 1, 2]);
    }

    #[test]
    fn dag_yields_singletons_in_reverse_topological_order() {
        let g = RegisterGraph::from_edges(3, &[(0, 1), (1, 2)], classes(3, 0));
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 3);
        // Reverse topological order of the condensation: sinks first.
        assert_eq!(sccs[0], vec![2]);
        assert_eq!(sccs[2], vec![0]);
    }

    #[test]
    fn two_cycles_bridged_one_way_stay_separate() {
        // 0<->1 and 2<->3 with a bridge 1 -> 2: two SCCs.
        let g =
            RegisterGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)], classes(2, 2));
        let report = classify_sccs(&g);
        assert_eq!(report.sccs.len(), 2);
        assert_eq!(report.num_original, 1);
        assert_eq!(report.num_extra, 1);
        assert_eq!(report.num_mixed, 0);
        assert_eq!(report.percent_in_mixed, 0.0);
    }

    #[test]
    fn bidirectional_bridge_merges_into_mixed_component() {
        // Same as above plus the back edge 2 -> 1: everything collapses.
        let g = RegisterGraph::from_edges(
            4,
            &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2), (2, 1)],
            classes(2, 2),
        );
        let report = classify_sccs(&g);
        assert_eq!(report.sccs.len(), 1);
        assert_eq!(report.num_mixed, 1);
        assert_eq!(report.num_original, 0);
        assert_eq!(report.num_extra, 0);
        assert!((report.percent_in_mixed - 100.0).abs() < 1e-9);
        assert_eq!(report.largest_of(SccClass::Mixed).unwrap().len(), 4);
    }

    #[test]
    fn encoded_registers_force_mixed_class() {
        let g = RegisterGraph::from_edges(
            2,
            &[(0, 1), (1, 0)],
            vec![RegClass::Encoded, RegClass::Encoded],
        );
        let report = classify_sccs(&g);
        assert_eq!(report.num_mixed, 1);
    }

    #[test]
    fn singleton_nodes_are_counted() {
        let g = RegisterGraph::from_edges(3, &[], classes(2, 1));
        let report = classify_sccs(&g);
        assert_eq!(report.sccs.len(), 3);
        assert_eq!(report.num_original, 2);
        assert_eq!(report.num_extra, 1);
        assert_eq!(report.num_registers(), 3);
    }

    #[test]
    fn empty_graph_report_is_sane() {
        let g = RegisterGraph::from_edges(0, &[], vec![]);
        let report = classify_sccs(&g);
        assert!(report.sccs.is_empty());
        assert_eq!(report.percent_in_mixed, 0.0);
    }

    #[test]
    fn large_random_ring_is_a_single_component() {
        let n = 500;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = RegisterGraph::from_edges(n, &edges, classes(n, 0));
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), n);
    }

    #[test]
    fn display_names_match_paper_terms() {
        assert_eq!(SccClass::Original.to_string(), "O-SCC");
        assert_eq!(SccClass::Extra.to_string(), "E-SCC");
        assert_eq!(SccClass::Mixed.to_string(), "M-SCC");
    }
}
