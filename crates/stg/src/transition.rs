//! Explicit state-transition-graph (STG) exploration for small circuits.
//!
//! The paper's background section discusses attacks that look for signatures
//! in the STG of an encrypted circuit (e.g. sink state clusters added by
//! State-Deflection, or single entry edges from the locking states into the
//! original state space). Exhaustively enumerating the STG is only feasible
//! for small register counts, but it is exactly what is needed to study such
//! signatures on toy circuits and to validate the register-level (RCG)
//! abstraction used everywhere else: every edge of the RCG corresponds to a
//! dependency that the STG exploration can actually exercise.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use netlist::{Netlist, NetlistError};

/// An explicit state transition graph over the *reachable* states of a
/// sequential circuit, enumerated by exhaustive input sweeps from the reset
/// state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateGraph {
    /// Number of state bits (flip-flops).
    pub state_bits: usize,
    /// Reachable states, encoded LSB-first as integers, in discovery order.
    pub states: Vec<u64>,
    /// Directed edges `from -> to` labelled with one input value that
    /// triggers the transition (the smallest one found).
    pub edges: BTreeMap<(u64, u64), u64>,
}

impl StateGraph {
    /// Number of reachable states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of distinct transitions.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// States with no outgoing edge to a *different* state (every input keeps
    /// the circuit in place) — the "sink" signature the paper mentions for
    /// State-Deflection-style schemes.
    pub fn sink_states(&self) -> Vec<u64> {
        self.states
            .iter()
            .copied()
            .filter(|&s| !self.edges.keys().any(|&(from, to)| from == s && to != s))
            .collect()
    }

    /// Successors of a state.
    pub fn successors(&self, state: u64) -> Vec<u64> {
        self.edges
            .keys()
            .filter(|&&(from, _)| from == state)
            .map(|&(_, to)| to)
            .collect()
    }
}

/// Exhaustively explores the reachable STG of `netlist`.
///
/// The exploration sweeps every input value from every reachable state, so it
/// is limited to circuits with at most `max_state_bits` flip-flops and
/// `max_input_bits` primary inputs (both capped at 20 combined to keep the
/// sweep bounded).
///
/// # Errors
///
/// Returns [`NetlistError::InvalidParameter`] if the circuit exceeds the
/// configured bounds, or a validation error if the netlist is malformed.
pub fn explore(
    netlist: &Netlist,
    max_state_bits: usize,
    max_input_bits: usize,
) -> Result<StateGraph, NetlistError> {
    netlist.validate()?;
    let state_bits = netlist.num_dffs();
    let input_bits = netlist.num_inputs();
    if state_bits > max_state_bits || input_bits > max_input_bits || state_bits + input_bits > 20 {
        return Err(NetlistError::InvalidParameter(format!(
            "STG exploration limited to {max_state_bits} state bits and {max_input_bits} input \
             bits (got {state_bits} and {input_bits})"
        )));
    }
    let order = netlist::topo::gate_order(netlist)?;

    let encode = |bits: &[bool]| -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
    };
    let reset: Vec<bool> = netlist.dffs().iter().map(|d| d.init).collect();
    let reset_code = encode(&reset);

    let mut discovered: BTreeSet<u64> = BTreeSet::new();
    let mut states = Vec::new();
    let mut edges = BTreeMap::new();
    let mut queue = VecDeque::new();
    discovered.insert(reset_code);
    states.push(reset_code);
    queue.push_back(reset_code);

    let mut values = vec![false; netlist.num_nets()];
    while let Some(state_code) = queue.pop_front() {
        for input_value in 0..(1u64 << input_bits) {
            // Load state and inputs.
            for (i, dff) in netlist.dffs().iter().enumerate() {
                values[dff.q.index()] = (state_code >> i) & 1 == 1;
            }
            for (i, &input) in netlist.inputs().iter().enumerate() {
                values[input.index()] = (input_value >> i) & 1 == 1;
            }
            for &gid in &order {
                let gate = netlist.gate(gid);
                let ins: Vec<bool> = gate.inputs().iter().map(|&n| values[n.index()]).collect();
                values[gate.output().index()] = gate.kind().eval(&ins);
            }
            let next: Vec<bool> = netlist
                .dffs()
                .iter()
                .map(|d| values[d.d.expect("validated netlist").index()])
                .collect();
            let next_code = encode(&next);
            edges.entry((state_code, next_code)).or_insert(input_value);
            if discovered.insert(next_code) {
                states.push(next_code);
                queue.push_back(next_code);
            }
        }
    }
    Ok(StateGraph {
        state_bits,
        states,
        edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GateKind;

    /// A 2-bit counter with enable: 4 reachable states in a ring.
    fn counter() -> Netlist {
        let mut nl = Netlist::new("cnt2");
        let en = nl.add_input("en");
        let q0 = nl.declare_dff("q0", false).unwrap();
        let q1 = nl.declare_dff("q1", false).unwrap();
        let n0 = nl.add_gate(GateKind::Xor, &[q0, en], "n0").unwrap();
        let c = nl.add_gate(GateKind::And, &[q0, en], "c").unwrap();
        let n1 = nl.add_gate(GateKind::Xor, &[q1, c], "n1").unwrap();
        nl.bind_dff(q0, n0).unwrap();
        nl.bind_dff(q1, n1).unwrap();
        nl.mark_output(q1).unwrap();
        nl
    }

    #[test]
    fn counter_stg_is_a_ring_with_self_loops() {
        let nl = counter();
        let stg = explore(&nl, 8, 8).unwrap();
        assert_eq!(stg.num_states(), 4);
        // Each state has a self-loop (en=0) and an edge to the next value.
        assert_eq!(stg.num_edges(), 8);
        assert_eq!(stg.successors(0), vec![0, 1]);
        assert_eq!(stg.successors(3), vec![0, 3]);
        assert!(stg.sink_states().is_empty());
    }

    #[test]
    fn stuck_state_is_reported_as_sink() {
        // A register that, once set, never clears: state 1 is a sink.
        let mut nl = Netlist::new("latching");
        let a = nl.add_input("a");
        let q = nl.declare_dff("q", false).unwrap();
        let d = nl.add_gate(GateKind::Or, &[q, a], "d").unwrap();
        nl.bind_dff(q, d).unwrap();
        nl.mark_output(q).unwrap();
        let stg = explore(&nl, 4, 4).unwrap();
        assert_eq!(stg.num_states(), 2);
        assert_eq!(stg.sink_states(), vec![1]);
    }

    #[test]
    fn oversized_circuits_are_refused() {
        let mut nl = Netlist::new("wide");
        let mut last = nl.add_input("a");
        for i in 0..25 {
            let q = nl.declare_dff(format!("q{i}"), false).unwrap();
            nl.bind_dff(q, last).unwrap();
            last = q;
        }
        nl.mark_output(last).unwrap();
        assert!(explore(&nl, 8, 8).is_err());
        assert!(explore(&nl, 30, 8).is_err());
    }

    #[test]
    fn unreachable_states_are_not_enumerated() {
        // q1 can only ever hold 0 because its D input is constant 0.
        let mut nl = Netlist::new("dead");
        let a = nl.add_input("a");
        let q0 = nl.declare_dff("q0", false).unwrap();
        let q1 = nl.declare_dff("q1", false).unwrap();
        let zero = nl.add_gate(GateKind::Const0, &[], "zero").unwrap();
        nl.bind_dff(q0, a).unwrap();
        nl.bind_dff(q1, zero).unwrap();
        nl.mark_output(q0).unwrap();
        let stg = explore(&nl, 8, 8).unwrap();
        assert_eq!(stg.num_states(), 2); // q1 stuck at 0 halves the space
    }
}
