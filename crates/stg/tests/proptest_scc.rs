//! Property-based tests of the SCC machinery: the computed components form a
//! partition, nodes inside one component are mutually reachable, nodes in
//! different components are not mutually reachable, and the classification is
//! consistent with the register provenance tags.

use proptest::prelude::*;

use netlist::RegClass;
use stg::{classify_sccs, tarjan_scc, RegisterGraph, SccClass};

/// Reachability by BFS over the successor lists.
fn reachable(graph: &RegisterGraph, from: usize, to: usize) -> bool {
    let mut seen = vec![false; graph.num_nodes()];
    let mut queue = vec![from];
    seen[from] = true;
    while let Some(n) = queue.pop() {
        if n == to {
            return true;
        }
        for &succ in graph.successors(n) {
            if !seen[succ] {
                seen[succ] = true;
                queue.push(succ);
            }
        }
    }
    from == to
}

fn graph_strategy(
    max_nodes: usize,
) -> impl Strategy<Value = (usize, Vec<(usize, usize)>, Vec<bool>)> {
    (2..=max_nodes).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(3 * n));
        let classes = proptest::collection::vec(any::<bool>(), n);
        (Just(n), edges, classes)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sccs_partition_the_nodes((n, edges, locking) in graph_strategy(14)) {
        let classes: Vec<RegClass> = locking
            .iter()
            .map(|&l| if l { RegClass::Locking } else { RegClass::Original })
            .collect();
        let graph = RegisterGraph::from_edges(n, &edges, classes);
        let sccs = tarjan_scc(&graph);

        // Partition: every node appears exactly once.
        let mut seen = vec![0usize; n];
        for component in &sccs {
            for &node in component {
                seen[node] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "not a partition: {seen:?}");
    }

    #[test]
    fn scc_membership_equals_mutual_reachability((n, edges, locking) in graph_strategy(10)) {
        let classes: Vec<RegClass> = locking
            .iter()
            .map(|&l| if l { RegClass::Locking } else { RegClass::Original })
            .collect();
        let graph = RegisterGraph::from_edges(n, &edges, classes);
        let sccs = tarjan_scc(&graph);
        let mut component_of = vec![usize::MAX; n];
        for (idx, component) in sccs.iter().enumerate() {
            for &node in component {
                component_of[node] = idx;
            }
        }
        for a in 0..n {
            for b in 0..n {
                let mutually = reachable(&graph, a, b) && reachable(&graph, b, a);
                prop_assert_eq!(
                    component_of[a] == component_of[b],
                    mutually,
                    "nodes {} and {} disagree", a, b
                );
            }
        }
    }

    #[test]
    fn classification_is_consistent_with_tags((n, edges, locking) in graph_strategy(12)) {
        let classes: Vec<RegClass> = locking
            .iter()
            .map(|&l| if l { RegClass::Locking } else { RegClass::Original })
            .collect();
        let graph = RegisterGraph::from_edges(n, &edges, classes.clone());
        let report = classify_sccs(&graph);

        prop_assert_eq!(report.num_registers(), n);
        prop_assert_eq!(
            report.num_original + report.num_extra + report.num_mixed,
            report.sccs.len()
        );
        for component in &report.sccs {
            let has_original = component.nodes.iter().any(|&x| classes[x] == RegClass::Original);
            let has_locking = component.nodes.iter().any(|&x| classes[x] == RegClass::Locking);
            let expected = match (has_original, has_locking) {
                (true, true) => SccClass::Mixed,
                (false, true) => SccClass::Extra,
                _ => SccClass::Original,
            };
            prop_assert_eq!(component.class, expected);
        }
        prop_assert!(report.percent_in_mixed >= 0.0 && report.percent_in_mixed <= 100.0);
    }
}
