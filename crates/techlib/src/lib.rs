//! Standard-cell style cost model (area, delay, power) for netlists.
//!
//! The paper synthesizes locked netlists with Synopsys Design Compiler and the
//! Nangate 45nm Open Cell Library and reports area/delay/power overhead ratios
//! (Fig. 6). A commercial synthesis flow is not reproducible here, so this
//! crate provides a deterministic cost model with Nangate-45nm-like per-cell
//! constants:
//!
//! * **area** — sum of per-cell areas (µm²),
//! * **delay** — longest register-to-register / input-to-output combinational
//!   path under per-cell propagation delays (ns),
//! * **power** — per-cell leakage plus activity-weighted dynamic power, with
//!   switching activity measured by random simulation inside this crate (µW).
//!
//! Because Fig. 6 reports *ratios* (locked vs. original), a consistent cost
//! model preserves the paper's trends even though absolute numbers differ from
//! a real synthesis run. See `DESIGN.md` for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod library;
mod metrics;

pub use library::{CellCost, TechLibrary};
pub use metrics::{estimate_activity, AreaReport, DelayReport, OverheadReport, PowerReport};
