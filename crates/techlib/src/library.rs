//! Per-cell cost tables.

use netlist::GateKind;

/// Cost of a single standard cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellCost {
    /// Cell area in µm².
    pub area: f64,
    /// Typical propagation delay in ns.
    pub delay: f64,
    /// Leakage power in nW.
    pub leakage: f64,
    /// Dynamic energy per output toggle, in fJ (scaled into µW at a nominal
    /// clock by the power report).
    pub dynamic: f64,
}

/// A technology library: one [`CellCost`] per gate kind plus the flip-flop.
///
/// The default [`TechLibrary::nangate45`] table uses values in the range of
/// the Nangate 45nm Open Cell Library typical corner; the exact numbers only
/// matter up to ratios for the paper's Fig. 6.
#[derive(Debug, Clone, PartialEq)]
pub struct TechLibrary {
    name: String,
    const_cost: CellCost,
    buf: CellCost,
    not: CellCost,
    and2: CellCost,
    nand2: CellCost,
    or2: CellCost,
    nor2: CellCost,
    xor2: CellCost,
    xnor2: CellCost,
    mux2: CellCost,
    dff: CellCost,
}

impl TechLibrary {
    /// A Nangate-45nm-like typical-corner library.
    pub fn nangate45() -> Self {
        TechLibrary {
            name: "nangate45-like".to_string(),
            const_cost: CellCost {
                area: 0.0,
                delay: 0.0,
                leakage: 0.0,
                dynamic: 0.0,
            },
            buf: CellCost {
                area: 0.798,
                delay: 0.030,
                leakage: 10.0,
                dynamic: 0.6,
            },
            not: CellCost {
                area: 0.532,
                delay: 0.012,
                leakage: 8.0,
                dynamic: 0.5,
            },
            and2: CellCost {
                area: 1.064,
                delay: 0.032,
                leakage: 17.0,
                dynamic: 0.9,
            },
            nand2: CellCost {
                area: 0.798,
                delay: 0.014,
                leakage: 12.0,
                dynamic: 0.7,
            },
            or2: CellCost {
                area: 1.064,
                delay: 0.035,
                leakage: 18.0,
                dynamic: 0.9,
            },
            nor2: CellCost {
                area: 0.798,
                delay: 0.018,
                leakage: 13.0,
                dynamic: 0.7,
            },
            xor2: CellCost {
                area: 1.596,
                delay: 0.045,
                leakage: 26.0,
                dynamic: 1.4,
            },
            xnor2: CellCost {
                area: 1.596,
                delay: 0.046,
                leakage: 26.0,
                dynamic: 1.4,
            },
            mux2: CellCost {
                area: 1.862,
                delay: 0.050,
                leakage: 30.0,
                dynamic: 1.5,
            },
            dff: CellCost {
                area: 4.522,
                delay: 0.090,
                leakage: 60.0,
                dynamic: 3.2,
            },
        }
    }

    /// Name of the library.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cost of a flip-flop cell.
    pub fn dff_cost(&self) -> CellCost {
        self.dff
    }

    fn base_cost(&self, kind: GateKind) -> CellCost {
        match kind {
            GateKind::Const0 | GateKind::Const1 => self.const_cost,
            GateKind::Buf => self.buf,
            GateKind::Not => self.not,
            GateKind::And => self.and2,
            GateKind::Nand => self.nand2,
            GateKind::Or => self.or2,
            GateKind::Nor => self.nor2,
            GateKind::Xor => self.xor2,
            GateKind::Xnor => self.xnor2,
            GateKind::Mux => self.mux2,
        }
    }

    /// Cost of a gate with the given number of inputs.
    ///
    /// Gates wider than two inputs are priced as a balanced tree of 2-input
    /// cells (`n-1` cells, `ceil(log2 n)` levels of delay), which is how a
    /// technology mapper would decompose them.
    pub fn gate_cost(&self, kind: GateKind, num_inputs: usize) -> CellCost {
        let base = self.base_cost(kind);
        if num_inputs <= 2 {
            return base;
        }
        let cells = (num_inputs - 1) as f64;
        let levels = (num_inputs as f64).log2().ceil();
        CellCost {
            area: base.area * cells,
            delay: base.delay * levels,
            leakage: base.leakage * cells,
            dynamic: base.dynamic * cells,
        }
    }
}

impl Default for TechLibrary {
    fn default() -> Self {
        TechLibrary::nangate45()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_input_cost_is_the_base_cost() {
        let lib = TechLibrary::nangate45();
        let c = lib.gate_cost(GateKind::Nand, 2);
        assert!((c.area - 0.798).abs() < 1e-9);
    }

    #[test]
    fn wide_gates_cost_a_tree_of_cells() {
        let lib = TechLibrary::nangate45();
        let c4 = lib.gate_cost(GateKind::And, 4);
        let c2 = lib.gate_cost(GateKind::And, 2);
        assert!((c4.area - 3.0 * c2.area).abs() < 1e-9);
        assert!((c4.delay - 2.0 * c2.delay).abs() < 1e-9);
    }

    #[test]
    fn constants_are_free() {
        let lib = TechLibrary::nangate45();
        assert_eq!(lib.gate_cost(GateKind::Const0, 0).area, 0.0);
    }

    #[test]
    fn dff_is_the_most_expensive_cell() {
        let lib = TechLibrary::nangate45();
        let dff = lib.dff_cost();
        for kind in GateKind::ALL {
            assert!(dff.area >= lib.gate_cost(kind, 2).area);
        }
    }

    #[test]
    fn default_is_nangate45() {
        assert_eq!(TechLibrary::default(), TechLibrary::nangate45());
    }
}
