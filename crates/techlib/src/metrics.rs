//! Area, delay and power reports plus the locked-vs-original overhead ratio.

use rand::Rng;

use netlist::{Netlist, NetlistError};

use crate::library::TechLibrary;

/// Area breakdown of a netlist (µm²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Combinational cell area.
    pub combinational: f64,
    /// Sequential (flip-flop) cell area.
    pub sequential: f64,
    /// Total cell area.
    pub total: f64,
}

impl AreaReport {
    /// Computes the area of a netlist under a library.
    pub fn of(netlist: &Netlist, library: &TechLibrary) -> Self {
        let combinational = netlist
            .gates()
            .map(|g| library.gate_cost(g.kind(), g.inputs().len()).area)
            .sum();
        let sequential = netlist.num_dffs() as f64 * library.dff_cost().area;
        AreaReport {
            combinational,
            sequential,
            total: combinational + sequential,
        }
    }
}

/// Critical-path delay of a netlist (ns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayReport {
    /// Longest combinational path delay including the launching flip-flop's
    /// clock-to-Q contribution.
    pub critical_path: f64,
    /// Number of cells on the longest topological path.
    pub logic_levels: u32,
}

impl DelayReport {
    /// Computes the critical-path delay of a netlist under a library.
    ///
    /// # Errors
    ///
    /// Returns an error if the combinational logic is cyclic.
    pub fn of(netlist: &Netlist, library: &TechLibrary) -> Result<Self, NetlistError> {
        let order = netlist::topo::gate_order(netlist)?;
        let clk_to_q = library.dff_cost().delay;
        // Arrival time per net: primary inputs arrive at 0, register outputs
        // at clock-to-Q.
        let mut arrival = vec![0.0f64; netlist.num_nets()];
        let mut depth = vec![0u32; netlist.num_nets()];
        for dff in netlist.dffs() {
            arrival[dff.q.index()] = clk_to_q;
        }
        for gid in order {
            let fanins = netlist.gate_fanins(gid);
            let cost = library.gate_cost(netlist.gate_kind(gid), fanins.len());
            let (max_arrival, max_depth) = fanins
                .iter()
                .map(|n| (arrival[n.index()], depth[n.index()]))
                .fold((0.0f64, 0u32), |(a, d), (na, nd)| (a.max(na), d.max(nd)));
            let out = netlist.gate_output(gid).index();
            arrival[out] = max_arrival + cost.delay;
            depth[out] = max_depth + 1;
        }
        let mut critical_path = 0.0f64;
        let mut logic_levels = 0u32;
        for end in netlist::topo::path_endpoints(netlist) {
            critical_path = critical_path.max(arrival[end.index()]);
            logic_levels = logic_levels.max(depth[end.index()]);
        }
        Ok(DelayReport {
            critical_path,
            logic_levels,
        })
    }
}

/// Power estimate of a netlist (µW at a nominal 1 GHz clock).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Leakage power (activity independent).
    pub leakage: f64,
    /// Dynamic (switching) power.
    pub dynamic: f64,
    /// Total power.
    pub total: f64,
}

impl PowerReport {
    /// Computes leakage and activity-weighted dynamic power. Switching
    /// activity is measured by simulating `cycles` cycles of uniformly random
    /// primary inputs with the provided RNG.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist does not validate.
    pub fn of<R: Rng + ?Sized>(
        netlist: &Netlist,
        library: &TechLibrary,
        cycles: usize,
        rng: &mut R,
    ) -> Result<Self, NetlistError> {
        let activity = estimate_activity(netlist, cycles, rng)?;
        let mut leakage = 0.0;
        let mut dynamic = 0.0;
        for gate in netlist.gates() {
            let cost = library.gate_cost(gate.kind(), gate.inputs().len());
            leakage += cost.leakage;
            dynamic += cost.dynamic * activity[gate.output().index()];
        }
        let dff_cost = library.dff_cost();
        for dff in netlist.dffs() {
            leakage += dff_cost.leakage;
            dynamic += dff_cost.dynamic * activity[dff.q.index()];
        }
        // Leakage is tabulated in nW, dynamic in fJ/toggle at 1 GHz ≈ µW.
        let leakage = leakage * 1e-3;
        Ok(PowerReport {
            leakage,
            dynamic,
            total: leakage + dynamic,
        })
    }
}

/// Estimates the toggle rate (transitions per cycle, in `[0, 1]`) of every net
/// by random simulation. The result is indexed by net id.
///
/// # Errors
///
/// Returns an error if the netlist does not validate.
pub fn estimate_activity<R: Rng + ?Sized>(
    netlist: &Netlist,
    cycles: usize,
    rng: &mut R,
) -> Result<Vec<f64>, NetlistError> {
    netlist.validate()?;
    let order = netlist::topo::gate_order(netlist)?;
    let mut values = vec![false; netlist.num_nets()];
    let mut previous = vec![false; netlist.num_nets()];
    let mut toggles = vec![0usize; netlist.num_nets()];
    let mut state: Vec<bool> = netlist.dffs().iter().map(|d| d.init).collect();
    let mut ins: Vec<bool> = Vec::new();

    for cycle in 0..cycles.max(1) {
        for &input in netlist.inputs() {
            values[input.index()] = rng.gen_bool(0.5);
        }
        for (dff, &s) in netlist.dffs().iter().zip(&state) {
            values[dff.q.index()] = s;
        }
        for &gid in &order {
            ins.clear();
            ins.extend(netlist.gate_fanins(gid).iter().map(|&n| values[n.index()]));
            values[netlist.gate_output(gid).index()] = netlist.gate_kind(gid).eval(&ins);
        }
        if cycle > 0 {
            for (i, (&now, &before)) in values.iter().zip(&previous).enumerate() {
                if now != before {
                    toggles[i] += 1;
                }
            }
        }
        previous.copy_from_slice(&values);
        for (slot, dff) in state.iter_mut().zip(netlist.dffs()) {
            *slot = values[dff.d.expect("validated netlist").index()];
        }
    }
    let denom = cycles.max(2) as f64 - 1.0;
    Ok(toggles.into_iter().map(|t| t as f64 / denom).collect())
}

/// Relative cost of a locked design versus the original design, in the shape
/// of the paper's Fig. 6 (overhead expressed as `locked/original − 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// Area overhead ratio.
    pub area: f64,
    /// Critical-path delay overhead ratio.
    pub delay: f64,
    /// Power overhead ratio.
    pub power: f64,
}

impl OverheadReport {
    /// Computes the overhead of `locked` relative to `original` under the
    /// library, measuring switching activity over `cycles` random cycles.
    ///
    /// # Errors
    ///
    /// Returns an error if either netlist fails validation.
    pub fn between<R: Rng + ?Sized>(
        original: &Netlist,
        locked: &Netlist,
        library: &TechLibrary,
        cycles: usize,
        rng: &mut R,
    ) -> Result<Self, NetlistError> {
        use rand::SeedableRng;
        let area_o = AreaReport::of(original, library);
        let area_l = AreaReport::of(locked, library);
        let delay_o = DelayReport::of(original, library)?;
        let delay_l = DelayReport::of(locked, library)?;
        // Use the same random input stream for both designs so that identical
        // circuits report identical switching power.
        let seed: u64 = rng.gen();
        let mut rng_o = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rng_l = rand::rngs::StdRng::seed_from_u64(seed);
        let power_o = PowerReport::of(original, library, cycles, &mut rng_o)?;
        let power_l = PowerReport::of(locked, library, cycles, &mut rng_l)?;
        let ratio = |locked: f64, original: f64| {
            if original <= f64::EPSILON {
                0.0
            } else {
                locked / original - 1.0
            }
        };
        Ok(OverheadReport {
            area: ratio(area_l.total, area_o.total),
            delay: ratio(delay_l.critical_path, delay_o.critical_path),
            power: ratio(power_l.total, power_o.total),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GateKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_seq() -> Netlist {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let q = nl.declare_dff("q", false).unwrap();
        let x = nl.add_gate(GateKind::And, &[a, b], "x").unwrap();
        let y = nl.add_gate(GateKind::Xor, &[x, q], "y").unwrap();
        nl.bind_dff(q, y).unwrap();
        nl.mark_output(y).unwrap();
        nl
    }

    #[test]
    fn area_accumulates_cells_and_dffs() {
        let nl = small_seq();
        let lib = TechLibrary::nangate45();
        let area = AreaReport::of(&nl, &lib);
        assert!(area.sequential > 0.0);
        assert!(area.combinational > 0.0);
        assert!((area.total - area.sequential - area.combinational).abs() < 1e-12);
    }

    #[test]
    fn delay_tracks_the_longest_path() {
        let nl = small_seq();
        let lib = TechLibrary::nangate45();
        let delay = DelayReport::of(&nl, &lib).unwrap();
        // clk->q + AND + XOR is the longest path; it has two logic levels.
        assert_eq!(delay.logic_levels, 2);
        let expected = lib.dff_cost().delay
            + lib.gate_cost(GateKind::Xor, 2).delay
            + 0.0f64.max(lib.gate_cost(GateKind::And, 2).delay);
        assert!(delay.critical_path <= expected + 1e-9);
        assert!(delay.critical_path > lib.dff_cost().delay);
    }

    #[test]
    fn power_is_positive_and_activity_dependent() {
        let nl = small_seq();
        let lib = TechLibrary::nangate45();
        let mut rng = StdRng::seed_from_u64(11);
        let p = PowerReport::of(&nl, &lib, 200, &mut rng).unwrap();
        assert!(p.leakage > 0.0);
        assert!(p.dynamic > 0.0);
        assert!((p.total - p.leakage - p.dynamic).abs() < 1e-12);
    }

    #[test]
    fn activity_of_constant_nets_is_zero() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let k = nl.add_gate(GateKind::Const1, &[], "k").unwrap();
        let o = nl.add_gate(GateKind::And, &[a, k], "o").unwrap();
        nl.mark_output(o).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let act = estimate_activity(&nl, 100, &mut rng).unwrap();
        assert_eq!(act[k.index()], 0.0);
        assert!(act[a.index()] > 0.2);
    }

    #[test]
    fn overhead_of_identical_designs_is_zero() {
        let nl = small_seq();
        let lib = TechLibrary::nangate45();
        let mut rng = StdRng::seed_from_u64(5);
        let o = OverheadReport::between(&nl, &nl, &lib, 100, &mut rng).unwrap();
        assert!(o.area.abs() < 1e-9);
        assert!(o.delay.abs() < 1e-9);
        assert!(o.power.abs() < 0.2, "power ratio {}", o.power);
    }

    #[test]
    fn adding_logic_increases_overhead() {
        let original = small_seq();
        let mut locked = small_seq();
        // Add an extra register and a few gates.
        let a = locked.net_id("a").unwrap();
        let q2 = locked.declare_dff("q2", false).unwrap();
        let z = locked.add_gate(GateKind::Xor, &[a, q2], "z").unwrap();
        locked.bind_dff(q2, z).unwrap();
        let lib = TechLibrary::nangate45();
        let mut rng = StdRng::seed_from_u64(5);
        let o = OverheadReport::between(&original, &locked, &lib, 100, &mut rng).unwrap();
        assert!(o.area > 0.0);
        assert!(o.power > 0.0);
    }
}
