//! Overhead report: area / delay / power cost of TriLock for increasing κs on
//! a synthetic benchmark profile (paper Fig. 6, at example scale).
//!
//! Run with `cargo run --release --example overhead_report`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use benchgen::{generate_scaled, CircuitProfile};
use techlib::{AreaReport, DelayReport, OverheadReport, TechLibrary};
use trilock::{encrypt, reencode, TriLockConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = TechLibrary::nangate45();
    let profile = CircuitProfile::by_name("s9234").expect("profile exists");
    let original = generate_scaled(&profile, 8, 7)?;

    let base_area = AreaReport::of(&original, &library);
    let base_delay = DelayReport::of(&original, &library)?;
    println!(
        "baseline {}-profile circuit: area {:.1} µm², critical path {:.3} ns, {} levels",
        profile.name, base_area.total, base_delay.critical_path, base_delay.logic_levels
    );

    println!(
        "\n{:>4} {:>10} {:>10} {:>10}   (κf = 1, α = 0.6, S = 10)",
        "κs", "area", "power", "delay"
    );
    for kappa_s in 1..=5usize {
        let config = TriLockConfig::new(kappa_s, 1)
            .with_alpha(0.6)
            .with_reencode_pairs(10);
        let mut rng = StdRng::seed_from_u64(40 + kappa_s as u64);
        let mut locked = encrypt(&original, &config, &mut rng)?;
        reencode(&mut locked.netlist, config.reencode_pairs)?;

        let mut ov_rng = StdRng::seed_from_u64(13);
        let overhead =
            OverheadReport::between(&original, &locked.netlist, &library, 256, &mut ov_rng)?;
        println!(
            "{:>4} {:>9.1}% {:>9.1}% {:>9.1}%",
            kappa_s,
            100.0 * overhead.area,
            100.0 * overhead.power,
            100.0 * overhead.delay
        );
    }
    println!(
        "\nOverhead grows with κs because the key-prefix capture registers scale with κs·|I|;\n\
         larger circuits amortize the fixed part better (paper Fig. 6)."
    );
    Ok(())
}
