//! Quickstart: lock a small circuit with TriLock, verify that the correct key
//! restores the original function, and measure the functional corruptibility
//! seen by an unauthorized user.
//!
//! Run with `cargo run --example quickstart`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use benchgen::small;
use trilock::{analytic, encrypt, TriLockConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The design to protect: the s27-style control circuit.
    let original = small::s27();
    println!(
        "original design `{}`: {} inputs, {} outputs, {} registers, {} gates",
        original.name(),
        original.num_inputs(),
        original.num_outputs(),
        original.num_dffs(),
        original.num_gates()
    );

    // 2. Lock it. κs controls SAT-attack resilience (ndip = 2^{κs·|I|}),
    //    κf and α control the corruptibility seen by wrong keys.
    let config = TriLockConfig::new(2, 1).with_alpha(0.6);
    let mut rng = StdRng::seed_from_u64(2022);
    let locked = encrypt(&original, &config, &mut rng)?;
    println!(
        "locked design: +{} registers, +{} gates, key = {} ({} cycles of {} bits)",
        locked.summary.added_dffs,
        locked.summary.added_gates,
        locked.key,
        locked.key.len(),
        locked.key.width()
    );

    // 3. The correct key restores the original behaviour.
    let mut check_rng = StdRng::seed_from_u64(7);
    let counterexample = sim::equiv::key_restores_function(
        &original,
        &locked.netlist,
        locked.key.cycles(),
        16,
        64,
        &mut check_rng,
    )?;
    match counterexample {
        None => println!("correct key: behaviour matches the original on 64 random runs"),
        Some(cex) => println!("UNEXPECTED mismatch with the correct key: {cex:?}"),
    }

    // 4. An unauthorized user (random keys) sees heavy corruption.
    let mut fc_rng = StdRng::seed_from_u64(11);
    let fc = sim::fc::estimate_fc(
        &original,
        &locked.netlist,
        locked.kappa(),
        6,
        800,
        &mut fc_rng,
    )?;
    let expected = analytic::fc_expected(original.num_inputs(), config.kappa_f, config.alpha);
    println!(
        "functional corruptibility over random keys: {:.3} (Eq. 15 predicts {:.3})",
        fc.fc, expected
    );

    // 5. Analytic SAT-attack resilience of this configuration.
    println!(
        "SAT-attack resilience: at least {:.3e} distinguishing input patterns (Eq. 10)",
        analytic::ndip(original.num_inputs(), config.kappa_s)
    );

    // 6. The locked netlist can be exported in the .bench format.
    let bench_text = netlist::bench::write(&locked.netlist);
    println!(
        "locked netlist exports to {} lines of .bench",
        bench_text.lines().count()
    );
    Ok(())
}
