//! Removal-attack analysis: compare the register-connection-graph structure
//! of a TriLock-locked design before and after state re-encoding
//! (paper Section III-C and Table II, at example scale).
//!
//! Run with `cargo run --example removal_analysis`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use attacks::removal_attack;
use benchgen::{generate_scaled, CircuitProfile};
use trilock::{encrypt, reencode, TriLockConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down b12-profile synthetic circuit keeps the run fast.
    let profile = CircuitProfile::by_name("b12").expect("profile exists");
    let original = generate_scaled(&profile, 4, 2022)?;
    println!(
        "target: {}-profile synthetic circuit with {} registers",
        profile.name,
        original.num_dffs()
    );

    let config = TriLockConfig::new(2, 1).with_alpha(0.6);
    let mut rng = StdRng::seed_from_u64(5);
    let locked = encrypt(&original, &config, &mut rng)?;

    println!(
        "\n{:>6} {:>6} {:>6} {:>6} {:>8} {:>10}",
        "S", "O", "E", "M", "P_M(%)", "protected"
    );
    for pairs in [0usize, 4, 10] {
        let mut netlist = locked.netlist.clone();
        if pairs > 0 {
            reencode(&mut netlist, pairs)?;
        }
        let report = removal_attack(&netlist);
        println!(
            "{:>6} {:>6} {:>6} {:>6} {:>8.1} {:>7}/{}",
            pairs,
            report.scc.num_original,
            report.scc.num_extra,
            report.scc.num_mixed,
            report.percent_hidden(),
            report.protected_locking_registers,
            report.total_locking_registers
        );
    }
    println!(
        "\nAs in the paper's Table II, re-encoding collapses the pure O-/E-SCCs into mixed\n\
         components, so the structural attack can no longer tell locking registers apart."
    );
    Ok(())
}
