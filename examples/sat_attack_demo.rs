//! SAT-attack demonstration: run the unrolling COMB-SAT attack against
//! TriLock for increasing κs and watch the number of distinguishing input
//! patterns grow exponentially (paper Table I, at toy scale).
//!
//! Run with `cargo run --release --example sat_attack_demo`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use attacks::{estimate_min_unroll_depth, AttackStatus, SatAttack, SatAttackConfig};
use benchgen::small;
use trilock::{analytic, encrypt, TriLockConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = small::toy_controller(2)?;
    println!(
        "target: `{}` with {} inputs — analytic ndip = 2^(κs·{})",
        original.name(),
        original.num_inputs(),
        original.num_inputs()
    );
    println!(
        "{:>4} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "κs", "b*", "ndip(eq10)", "dips", "depth", "time"
    );

    for kappa_s in 1..=3usize {
        let config = TriLockConfig::new(kappa_s, 1).with_alpha(0.6);
        let mut rng = StdRng::seed_from_u64(100 + kappa_s as u64);
        let locked = encrypt(&original, &config, &mut rng)?;

        // The attacker first estimates the minimum unrolling depth (Fun-SAT
        // style), then runs the DIP loop starting at that depth.
        let mut est_rng = StdRng::seed_from_u64(7);
        let b_star = estimate_min_unroll_depth(
            &original,
            &locked.netlist,
            locked.kappa(),
            8,
            64,
            &mut est_rng,
        )?
        .unwrap_or(1);

        let attack = SatAttack::new(&original, &locked.netlist, locked.kappa())?;
        let attack_config = SatAttackConfig {
            initial_unroll: b_star,
            max_unroll: 6,
            max_dips: 50_000,
            verify_sequences: 32,
            verify_cycles: 12,
            ..SatAttackConfig::default()
        };
        let mut attack_rng = StdRng::seed_from_u64(999);
        let outcome = attack.run(&attack_config, &mut attack_rng)?;

        let status = match &outcome.status {
            AttackStatus::KeyFound(key) => format!("key found: {key}"),
            AttackStatus::DipBudgetExhausted => "dip budget exhausted".to_string(),
            AttackStatus::UnrollBudgetExhausted => "unroll budget exhausted".to_string(),
            AttackStatus::TimedOut => "timed out".to_string(),
        };
        println!(
            "{:>4} {:>8} {:>10.0} {:>10} {:>10} {:>10.2?}   {}",
            kappa_s,
            b_star,
            analytic::ndip(original.num_inputs(), kappa_s),
            outcome.dips,
            outcome.unroll_depth,
            outcome.elapsed,
            status
        );
    }
    println!("\nEvery additional κs cycle multiplies the required DIPs by 2^|I|, matching Eq. 10.");
    Ok(())
}
