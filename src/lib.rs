//! Workspace facade for the TriLock reproduction.
//!
//! This crate exists so that the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`) at the repository root have a
//! single dependency that re-exports every component of the reproduction:
//!
//! * [`netlist`] — gate-level netlist model, `.bench` I/O, unrolling;
//! * [`sat`] — CDCL SAT solver and Tseitin encoding;
//! * [`sim`] — cycle-accurate simulation, FC estimation, equivalence checks;
//! * [`stg`] — register connection graph and SCC analysis;
//! * [`techlib`] — area/delay/power cost model;
//! * [`benchgen`] — synthetic ISCAS/ITC-profile benchmark generation;
//! * [`trilock`] — the TriLock locking scheme itself;
//! * [`attacks`] — SAT-based unrolling attack and removal attack;
//! * [`trilock_io`] — multi-format netlist frontend (`.bench`, EDIF 2.0.0,
//!   structural Verilog) with format auto-detection.
//!
//! Library users should depend on the individual crates directly; this façade
//! is a convenience for the examples and experiments shipped in this
//! repository.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use attacks;
pub use benchgen;
pub use netlist;
pub use sat;
pub use sim;
pub use stg;
pub use techlib;
pub use trilock;
pub use trilock_io;

/// Version of the reproduction suite (mirrors the workspace version).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_populated() {
        assert!(!super::VERSION.is_empty());
    }
}
