//! End-to-end integration test: lock a circuit with TriLock, estimate the
//! attacker's minimum unrolling depth, run the SAT-based unrolling attack and
//! check that the recovered key restores the original function — the complete
//! pipeline of the paper's evaluation at toy scale.

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::SeedableRng;

use trilock_suite::attacks::{estimate_min_unroll_depth, AttackStatus, SatAttack, SatAttackConfig};
use trilock_suite::benchgen::small;
use trilock_suite::sim;
use trilock_suite::trilock::{analytic, encrypt, TriLockConfig};
use trilock_suite::trilock_io;

#[test]
fn full_pipeline_recovers_a_functionally_correct_key() {
    let original = small::toy_controller(2).expect("toy circuit builds");
    let config = TriLockConfig::new(1, 1).with_alpha(0.6);
    let mut rng = StdRng::seed_from_u64(2022);
    let locked = encrypt(&original, &config, &mut rng).expect("locking succeeds");

    // The attacker estimates b* (paper: b* = κs).
    let mut est_rng = StdRng::seed_from_u64(1);
    let b_star = estimate_min_unroll_depth(
        &original,
        &locked.netlist,
        locked.kappa(),
        6,
        48,
        &mut est_rng,
    )
    .expect("estimation runs")
    .expect("wrong keys are observable");
    assert_eq!(b_star, analytic::min_unroll_depth(config.kappa_s));

    // The SAT attack completes on this tiny configuration.
    let attack = SatAttack::new(&original, &locked.netlist, locked.kappa()).expect("interfaces");
    let attack_config = SatAttackConfig {
        initial_unroll: b_star,
        max_unroll: 5,
        max_dips: 20_000,
        verify_sequences: 24,
        verify_cycles: 10,
        ..SatAttackConfig::default()
    };
    let mut attack_rng = StdRng::seed_from_u64(77);
    let outcome = attack
        .run(&attack_config, &mut attack_rng)
        .expect("attack runs");
    let key = match outcome.status {
        AttackStatus::KeyFound(key) => key,
        other => panic!("attack did not finish: {other:?}"),
    };

    // The number of DIPs respects the paper's lower bound (Eq. 10).
    assert!(outcome.dips as f64 >= analytic::ndip(original.num_inputs(), config.kappa_s));

    // The recovered key is functionally correct.
    let mut check_rng = StdRng::seed_from_u64(5);
    let cex = sim::equiv::key_restores_function(
        &original,
        &locked.netlist,
        key.cycles(),
        12,
        50,
        &mut check_rng,
    )
    .expect("equivalence check runs");
    assert!(cex.is_none(), "recovered key must restore the function");
}

/// Lock + SAT-attack each committed fixture with the packed 64-lane
/// candidate-key validation, and prove the recovered key is functionally
/// correct under both the packed checker and the scalar reference.
#[test]
fn committed_fixtures_survive_lock_and_attack_with_packed_validation() {
    for (fixture, seed) in [("s27.bench", 2026u64), ("vec4.bench", 2027u64)] {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(fixture);
        let original = trilock_io::read_circuit(&path)
            .unwrap_or_else(|e| panic!("fixture {fixture} reads: {e}"));
        let config = TriLockConfig::new(1, 1).with_alpha(0.6);
        let mut rng = StdRng::seed_from_u64(seed);
        let locked = encrypt(&original, &config, &mut rng).expect("locking succeeds");

        let attack =
            SatAttack::new(&original, &locked.netlist, locked.kappa()).expect("interfaces");
        let attack_config = SatAttackConfig {
            initial_unroll: 1,
            max_unroll: 5,
            max_dips: 20_000,
            verify_sequences: 64, // one full packed word per validation pass
            verify_cycles: 10,
            ..SatAttackConfig::default()
        };
        let mut attack_rng = StdRng::seed_from_u64(seed + 1);
        let outcome = attack
            .run(&attack_config, &mut attack_rng)
            .expect("attack runs");
        let key = match outcome.status {
            AttackStatus::KeyFound(key) => key,
            other => panic!("{fixture}: attack did not finish: {other:?}"),
        };

        // Packed validation and the scalar reference agree that the key is
        // functionally correct, and the per-key FC is exactly zero.
        let packed_cex = sim::equiv::key_restores_function(
            &original,
            &locked.netlist,
            key.cycles(),
            12,
            64,
            &mut StdRng::seed_from_u64(seed + 2),
        )
        .expect("packed check runs");
        assert!(packed_cex.is_none(), "{fixture}: recovered key fails");
        let scalar_cex = sim::equiv::key_restores_function_scalar(
            &original,
            &locked.netlist,
            key.cycles(),
            12,
            64,
            &mut StdRng::seed_from_u64(seed + 2),
        )
        .expect("scalar check runs");
        assert_eq!(packed_cex, scalar_cex, "{fixture}: engines disagree");
        let est = sim::fc::estimate_fc_for_key(
            &original,
            &locked.netlist,
            key.cycles(),
            10,
            128,
            &mut StdRng::seed_from_u64(seed + 3),
        )
        .expect("fc estimate runs");
        assert_eq!(est.mismatches, 0, "{fixture}: correct key has fc > 0");
    }
}

#[test]
fn attack_effort_grows_with_kappa_s_as_predicted() {
    let original = small::toy_controller(2).expect("toy circuit builds");
    let mut dips = Vec::new();
    for kappa_s in [1usize, 2] {
        let config = TriLockConfig::new(kappa_s, 1).with_alpha(0.6);
        let mut rng = StdRng::seed_from_u64(50 + kappa_s as u64);
        let locked = encrypt(&original, &config, &mut rng).expect("locking succeeds");
        let attack =
            SatAttack::new(&original, &locked.netlist, locked.kappa()).expect("interfaces");
        let attack_config = SatAttackConfig {
            initial_unroll: kappa_s,
            max_unroll: kappa_s + 3,
            max_dips: 20_000,
            verify_sequences: 24,
            verify_cycles: 12,
            ..SatAttackConfig::default()
        };
        let mut attack_rng = StdRng::seed_from_u64(7);
        let outcome = attack
            .run(&attack_config, &mut attack_rng)
            .expect("attack runs");
        assert!(outcome.succeeded(), "κs={kappa_s}: {:?}", outcome.status);
        dips.push(outcome.dips);
    }
    // Going from κs = 1 to κs = 2 must multiply the effort by at least 2^|I|/2.
    assert!(
        dips[1] >= dips[0] * 2,
        "dips did not grow: {dips:?} (expected roughly ×{})",
        1 << original.num_inputs()
    );
}
