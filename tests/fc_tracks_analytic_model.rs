//! Integration test: the simulated functional corruptibility of locked
//! circuits tracks the closed-form model (paper Eq. 15, evaluated in Fig. 7).

use rand::rngs::StdRng;
use rand::SeedableRng;

use trilock_suite::benchgen::small;
use trilock_suite::sim;
use trilock_suite::trilock::{analytic, encrypt, TriLockConfig};

fn measured_fc(alpha: f64, kappa_f: usize, seed: u64) -> (f64, f64) {
    let original = small::s27();
    let config = TriLockConfig::new(2, kappa_f).with_alpha(alpha);
    let mut rng = StdRng::seed_from_u64(seed);
    let locked = encrypt(&original, &config, &mut rng).expect("locking succeeds");
    let mut fc_rng = StdRng::seed_from_u64(seed ^ 0xfc);
    let est = sim::fc::estimate_fc(
        &original,
        &locked.netlist,
        locked.kappa(),
        6,
        800,
        &mut fc_rng,
    )
    .expect("fc estimation runs");
    (
        est.fc,
        analytic::fc_expected(original.num_inputs(), kappa_f, alpha),
    )
}

#[test]
fn fc_matches_eq15_within_the_papers_tolerance() {
    // The paper reports an absolute error within ±0.05 for its 800-sample
    // protocol; allow a slightly wider band for the smaller circuit.
    for (alpha, kappa_f) in [(0.3, 1), (0.6, 1), (0.9, 1), (0.6, 2)] {
        let (measured, predicted) = measured_fc(alpha, kappa_f, 7);
        assert!(
            (measured - predicted).abs() < 0.07,
            "α={alpha} κf={kappa_f}: measured {measured:.3} vs predicted {predicted:.3}"
        );
    }
}

#[test]
fn fc_is_monotone_in_alpha() {
    let (low, _) = measured_fc(0.2, 1, 11);
    let (mid, _) = measured_fc(0.5, 1, 11);
    let (high, _) = measured_fc(0.9, 1, 11);
    assert!(low <= mid + 0.03, "low {low} mid {mid}");
    assert!(mid <= high + 0.03, "mid {mid} high {high}");
}

#[test]
fn correct_key_always_has_zero_fc() {
    let original = small::s27();
    let config = TriLockConfig::new(2, 1).with_alpha(0.9);
    let mut rng = StdRng::seed_from_u64(3);
    let locked = encrypt(&original, &config, &mut rng).expect("locking succeeds");
    let mut fc_rng = StdRng::seed_from_u64(4);
    let est = sim::fc::estimate_fc_for_key(
        &original,
        &locked.netlist,
        locked.key.cycles(),
        8,
        200,
        &mut fc_rng,
    )
    .expect("fc estimation runs");
    assert_eq!(est.mismatches, 0);
}

#[test]
fn naive_locking_has_negligible_fc_but_trilock_does_not() {
    // The trade-off of paper Fig. 4: at equal κ the naive scheme corrupts
    // almost nothing while TriLock reaches α·(1 − 2^{-κf|I|}).
    let original = small::s27();
    let mut rng = StdRng::seed_from_u64(9);
    let naive = encrypt(&original, &TriLockConfig::naive(3), &mut rng).expect("naive locks");
    let mut rng = StdRng::seed_from_u64(9);
    let trilock = encrypt(
        &original,
        &TriLockConfig::new(2, 1).with_alpha(0.6),
        &mut rng,
    )
    .expect("trilock locks");

    let mut fc_rng = StdRng::seed_from_u64(10);
    let naive_fc =
        sim::fc::estimate_fc(&original, &naive.netlist, 3, 6, 600, &mut fc_rng).expect("fc");
    let mut fc_rng = StdRng::seed_from_u64(10);
    let trilock_fc =
        sim::fc::estimate_fc(&original, &trilock.netlist, 3, 6, 600, &mut fc_rng).expect("fc");

    assert!(naive_fc.fc < 0.05, "naive fc {}", naive_fc.fc);
    assert!(trilock_fc.fc > 0.4, "trilock fc {}", trilock_fc.fc);
}
