// Structural netlist written by trilock-io
// design: s27 (PI=4 PO=1 FF=3 gates=10)
module s27 (G0, G1, G2, G3, G17);
  input G0;
  input G1;
  input G2;
  input G3;
  output G17;
  wire G5;
  wire G6;
  wire G7;
  wire G14;
  wire G8;
  wire G15;
  wire G16;
  wire G9;
  wire G10;
  wire G11;
  wire G12;
  wire G13;

  DFF0 ff0 (.Q(G5), .D(G10));
  DFF0 ff1 (.Q(G6), .D(G11));
  DFF0 ff2 (.Q(G7), .D(G13));
  not g0 (G14, G0);
  and g1 (G8, G14, G6);
  or g2 (G15, G12, G8);
  or g3 (G16, G3, G8);
  nand g4 (G9, G16, G15);
  nor g5 (G10, G14, G11);
  nor g6 (G11, G5, G9);
  nor g7 (G12, G1, G7);
  nand g8 (G13, G2, G12);
  not g9 (G17, G11);
endmodule
