/* ITC'99-style vectored fixture: 4-bit load/rotate register with parity.
   The leading block comment also exercises content sniffing. */
module vec4 (d, en, q, par);
  input [3:0] d;
  input en;
  output [3:0] q;
  output par;
  wire [3:0] dx;
  wire [3:0] n;
  // Rotate the data bus by two via a part-select concatenation.
  assign dx = {d[1:0], d[3:2]};
  MUX2 m3 (.Y(n[3]), .S(en), .A(q[3]), .B(dx[3]));
  MUX2 m2 (.Y(n[2]), .S(en), .A(q[2]), .B(dx[2]));
  MUX2 m1 (.Y(n[1]), .S(en), .A(q[1]), .B(dx[1]));
  MUX2 m0 (.Y(n[0]), .S(en), .A(q[0]), .B(dx[0]));
  DFF1 f3 (.Q(q[3]), .D(n[3]));
  DFF f2 (.Q(q[2]), .D(n[2]));
  DFF f1 (.Q(q[1]), .D(n[1]));
  DFF f0 (.Q(q[0]), .D(n[0]));
  xor p0 (w0, q[3], q[2]);
  xor p1 (w1, q[1], q[0]);
  xor p2 (par, w0, w1);
endmodule
