//! End-to-end exercise of the multi-format frontend (the acceptance path of
//! the `trilock-io` subsystem): the committed `s27` fixture round-trips
//! between `.bench`, `.edif` and `.v` with sequential equivalence confirmed
//! by `sim::equiv`, and the full lock → SAT-attack pipeline runs on the EDIF
//! fixture.

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::SeedableRng;

use trilock_suite::attacks::{AttackStatus, SatAttack, SatAttackConfig};
use trilock_suite::netlist::Netlist;
use trilock_suite::sim;
use trilock_suite::trilock::{lock, TriLockConfig};
use trilock_suite::trilock_io::{self, CircuitFormat};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn assert_equiv(a: &Netlist, b: &Netlist, seed: u64, what: &str) {
    assert_eq!(a.num_inputs(), b.num_inputs(), "{what}: input count");
    assert_eq!(a.num_outputs(), b.num_outputs(), "{what}: output count");
    assert_eq!(a.num_dffs(), b.num_dffs(), "{what}: register count");
    let mut rng = StdRng::seed_from_u64(seed);
    let cex = sim::equiv::random_equiv_check(a, b, 16, 64, &mut rng).expect("interfaces match");
    assert!(cex.is_none(), "{what}: circuits diverge: {cex:?}");
}

#[test]
fn committed_fixtures_agree_across_all_formats() {
    let bench = trilock_io::read_circuit(fixture("s27.bench")).unwrap();
    let edif = trilock_io::read_circuit(fixture("s27.edif")).unwrap();
    let verilog = trilock_io::read_circuit(fixture("s27.v")).unwrap();
    assert_eq!(bench.name(), "s27");
    assert_eq!(edif.name(), "s27");
    assert_eq!(bench.num_gates(), 10);
    assert_equiv(&bench, &edif, 11, "s27.bench vs s27.edif");
    assert_equiv(&bench, &verilog, 12, "s27.bench vs s27.v");
}

#[test]
fn fixture_round_trips_through_every_format_pair() {
    let original = trilock_io::read_circuit(fixture("s27.bench")).unwrap();
    for from in CircuitFormat::ALL {
        for to in CircuitFormat::ALL {
            let leg1 = trilock_io::write_str(&original, from);
            let mid = trilock_io::parse_str(&leg1, from).unwrap();
            let leg2 = trilock_io::write_str(&mid, to);
            let back = trilock_io::parse_str(&leg2, to).unwrap();
            assert_equiv(&original, &back, 100, &format!("{from} -> {to}"));
        }
    }
}

#[test]
fn vectored_fixtures_agree_across_all_formats() {
    let bench = trilock_io::read_circuit(fixture("vec4.bench")).unwrap();
    let edif = trilock_io::read_circuit(fixture("vec4.edif")).unwrap();
    let verilog = trilock_io::read_circuit(fixture("vec4.v")).unwrap();
    assert_eq!(bench.name(), "vec4");
    assert_eq!(edif.name(), "vec4");
    assert_eq!(verilog.name(), "vec4");
    // Vector ports bit-blast into the same interface in every format:
    // d[3..0], en | q[3..0], par.
    for nl in [&bench, &edif, &verilog] {
        assert_eq!(nl.num_inputs(), 5);
        assert_eq!(nl.num_outputs(), 5);
        assert_eq!(nl.net_name(nl.inputs()[0]), "d[3]");
        assert_eq!(nl.net_name(nl.inputs()[4]), "en");
        assert_eq!(nl.net_name(nl.outputs()[0]), "q[3]");
        assert_eq!(nl.net_name(nl.outputs()[4]), "par");
        // The MSB register resets to 1 in all three encodings.
        let q3 = nl.net_id("q[3]").unwrap();
        let trilock_suite::netlist::Driver::Dff(id) = nl.driver(q3) else {
            panic!("q[3] must be a register");
        };
        assert!(nl.dff(id).init, "q[3] reset value lost");
        // Bus metadata is recovered from the bit-blasted names.
        let stats = trilock_suite::netlist::stats::NetlistStats::of(nl);
        assert_eq!(stats.num_input_buses, 1);
        assert_eq!(stats.num_output_buses, 1);
    }
    assert_equiv(&bench, &edif, 21, "vec4.bench vs vec4.edif");
    assert_equiv(&bench, &verilog, 22, "vec4.bench vs vec4.v");
}

#[test]
fn vectored_fixture_round_trips_through_every_format_pair() {
    let original = trilock_io::read_circuit(fixture("vec4.v")).unwrap();
    for from in CircuitFormat::ALL {
        for to in CircuitFormat::ALL {
            let leg1 = trilock_io::write_str(&original, from);
            let mid = trilock_io::parse_str(&leg1, from).unwrap();
            let leg2 = trilock_io::write_str(&mid, to);
            let back = trilock_io::parse_str(&leg2, to).unwrap();
            assert_equiv(&original, &back, 300, &format!("vec4 {from} -> {to}"));
            // Bit-blasted bus names survive every leg.
            assert!(back.net_id("d[3]").is_some(), "{from} -> {to} lost d[3]");
            assert!(back.net_id("q[0]").is_some(), "{from} -> {to} lost q[0]");
        }
    }
    // The vectored writers actually re-emit vectored syntax.
    let verilog = trilock_io::write_str(&original, CircuitFormat::Verilog);
    assert!(verilog.contains("input [3:0] d;"), "{verilog}");
    let edif = trilock_io::write_str(&original, CircuitFormat::Edif);
    assert!(edif.contains("(array d 4)"), "{edif}");
}

#[test]
fn lock_and_sat_attack_run_on_the_vectored_edif_fixture() {
    let original = trilock_io::read_circuit(fixture("vec4.edif")).unwrap();
    let config = TriLockConfig::new(1, 1)
        .with_alpha(0.5)
        .with_reencode_pairs(1);
    let mut rng = StdRng::seed_from_u64(13);
    let result = lock(&original, &config, &mut rng).unwrap();

    // The locked vectored circuit survives an EDIF round-trip; the correct
    // key still unlocks it.
    let text = trilock_io::write_str(&result.locked.netlist, CircuitFormat::Edif);
    let locked = trilock_io::parse_str(&text, CircuitFormat::Edif).unwrap();
    let mut check = StdRng::seed_from_u64(14);
    let cex = sim::equiv::key_restores_function(
        &original,
        &locked,
        result.locked.key.cycles(),
        8,
        20,
        &mut check,
    )
    .unwrap();
    assert!(cex.is_none(), "correct key failed after EDIF round-trip");

    let attack = SatAttack::new(&original, &locked, result.locked.kappa()).unwrap();
    let attack_config = SatAttackConfig {
        initial_unroll: 1,
        max_unroll: 4,
        max_dips: 10_000,
        verify_sequences: 16,
        verify_cycles: 10,
        ..SatAttackConfig::default()
    };
    let mut attack_rng = StdRng::seed_from_u64(15);
    let outcome = attack.run(&attack_config, &mut attack_rng).unwrap();
    assert!(outcome.dips >= 1);
}

#[test]
fn lock_and_sat_attack_run_on_the_edif_fixture() {
    let original = trilock_io::read_circuit(fixture("s27.edif")).unwrap();
    let config = TriLockConfig::new(1, 1)
        .with_alpha(0.6)
        .with_reencode_pairs(2);
    let mut rng = StdRng::seed_from_u64(3);
    let result = lock(&original, &config, &mut rng).unwrap();

    // The locked circuit survives an EDIF round-trip with its key intact.
    let text = trilock_io::write_str(&result.locked.netlist, CircuitFormat::Edif);
    let locked = trilock_io::parse_str(&text, CircuitFormat::Edif).unwrap();
    let mut check = StdRng::seed_from_u64(4);
    let cex = sim::equiv::key_restores_function(
        &original,
        &locked,
        result.locked.key.cycles(),
        8,
        20,
        &mut check,
    )
    .unwrap();
    assert!(cex.is_none(), "correct key failed after EDIF round-trip");

    // Register provenance survives the EDIF round-trip (the removal attack
    // needs it as ground truth).
    let class_histogram = |nl: &Netlist| {
        let mut counts = [0usize; 3];
        for dff in nl.dffs() {
            counts[match dff.class {
                trilock_suite::netlist::RegClass::Original => 0,
                trilock_suite::netlist::RegClass::Locking => 1,
                trilock_suite::netlist::RegClass::Encoded => 2,
            }] += 1;
        }
        counts
    };
    assert_eq!(
        class_histogram(&locked),
        class_histogram(&result.locked.netlist),
        "provenance tags lost in EDIF round-trip"
    );
    assert!(class_histogram(&locked)[1] + class_histogram(&locked)[2] > 0);

    // The SAT-based unrolling attack completes against the re-read netlist.
    let attack = SatAttack::new(&original, &locked, result.locked.kappa()).unwrap();
    let attack_config = SatAttackConfig {
        initial_unroll: 1,
        max_unroll: 4,
        max_dips: 10_000,
        verify_sequences: 16,
        verify_cycles: 10,
        ..SatAttackConfig::default()
    };
    let mut attack_rng = StdRng::seed_from_u64(5);
    let outcome = attack.run(&attack_config, &mut attack_rng).unwrap();
    assert!(outcome.dips >= 1);
    if let AttackStatus::KeyFound(key) = &outcome.status {
        let mut verify = StdRng::seed_from_u64(6);
        let cex = sim::equiv::key_restores_function(
            &original,
            &locked,
            key.cycles(),
            10,
            32,
            &mut verify,
        )
        .unwrap();
        assert!(cex.is_none(), "recovered key is not functionally correct");
    }
}
