//! Integration test: overhead trends (paper Fig. 6) and netlist-format
//! interoperability of locked designs.

use rand::rngs::StdRng;
use rand::SeedableRng;

use trilock_suite::benchgen::{generate_scaled, CircuitProfile};
use trilock_suite::netlist;
use trilock_suite::sim;
use trilock_suite::techlib::{AreaReport, DelayReport, OverheadReport, TechLibrary};
use trilock_suite::trilock::{encrypt, reencode, TriLockConfig};

fn original_circuit(seed: u64) -> netlist::Netlist {
    let profile = CircuitProfile::by_name("s9234").expect("profile exists");
    generate_scaled(&profile, 16, seed).expect("generation succeeds")
}

#[test]
fn overhead_grows_with_kappa_s() {
    let library = TechLibrary::nangate45();
    let original = original_circuit(3);
    let mut last_area = 0.0;
    for kappa_s in [1usize, 3, 5] {
        let config = TriLockConfig::new(kappa_s, 1).with_alpha(0.6);
        let mut rng = StdRng::seed_from_u64(kappa_s as u64);
        let locked = encrypt(&original, &config, &mut rng).expect("locking succeeds");
        let mut ov_rng = StdRng::seed_from_u64(8);
        let overhead =
            OverheadReport::between(&original, &locked.netlist, &library, 128, &mut ov_rng)
                .expect("overhead computes");
        assert!(overhead.area > last_area, "area overhead must grow with κs");
        assert!(overhead.power > 0.0);
        assert!(overhead.delay >= 0.0);
        last_area = overhead.area;
    }
}

#[test]
fn locking_never_reduces_area_or_registers() {
    let library = TechLibrary::nangate45();
    let original = original_circuit(5);
    let config = TriLockConfig::new(2, 1).with_alpha(0.6);
    let mut rng = StdRng::seed_from_u64(4);
    let mut locked = encrypt(&original, &config, &mut rng).expect("locking succeeds");
    reencode(&mut locked.netlist, 10).expect("re-encoding succeeds");

    let area_before = AreaReport::of(&original, &library);
    let area_after = AreaReport::of(&locked.netlist, &library);
    assert!(area_after.total > area_before.total);
    assert!(locked.netlist.num_dffs() >= original.num_dffs());

    let delay_before = DelayReport::of(&original, &library).expect("delay");
    let delay_after = DelayReport::of(&locked.netlist, &library).expect("delay");
    assert!(delay_after.critical_path >= delay_before.critical_path);
}

#[test]
fn locked_netlists_round_trip_through_the_bench_format() {
    let original = original_circuit(9);
    let config = TriLockConfig::new(1, 1).with_alpha(0.5);
    let mut rng = StdRng::seed_from_u64(11);
    let locked = encrypt(&original, &config, &mut rng).expect("locking succeeds");

    let text = netlist::bench::write(&locked.netlist);
    let reparsed = netlist::bench::parse(&text).expect("round-trip parses");
    assert_eq!(reparsed.num_inputs(), locked.netlist.num_inputs());
    assert_eq!(reparsed.num_outputs(), locked.netlist.num_outputs());
    assert_eq!(reparsed.num_dffs(), locked.netlist.num_dffs());
    assert_eq!(reparsed.num_gates(), locked.netlist.num_gates());

    // The reparsed circuit behaves identically (reset values are preserved by
    // the `# init` directives).
    let mut rng = StdRng::seed_from_u64(13);
    let cex = sim::equiv::random_equiv_check(&locked.netlist, &reparsed, 8, 20, &mut rng)
        .expect("equivalence check runs");
    assert!(cex.is_none(), "bench round-trip changed behaviour: {cex:?}");
}

#[test]
fn unrolled_locked_circuit_matches_sequential_simulation() {
    // The unrolling substrate used by the SAT attack must agree with the
    // cycle-accurate simulator on the locked circuit.
    let original = trilock_suite::benchgen::small::s27();
    let config = TriLockConfig::new(1, 1).with_alpha(0.6);
    let mut rng = StdRng::seed_from_u64(21);
    let locked = encrypt(&original, &config, &mut rng).expect("locking succeeds");

    let cycles = locked.kappa() + 3;
    let unrolled = netlist::unroll::unroll(&locked.netlist, cycles).expect("unrolls");
    let mut seq_sim = sim::Simulator::new(&locked.netlist).expect("sequential sim");
    let mut comb_sim = sim::Simulator::new(&unrolled.netlist).expect("combinational sim");

    let mut stim_rng = StdRng::seed_from_u64(33);
    for _ in 0..20 {
        let stimulus = sim::stimulus::random_sequence(&mut stim_rng, original.num_inputs(), cycles);
        let sequential = seq_sim.run_from_reset(&stimulus).expect("runs");
        // Drive the unrolled copy: all cycles at once.
        let mut flat_inputs = Vec::new();
        for (t, cycle) in stimulus.iter().enumerate() {
            for (i, &bit) in cycle.iter().enumerate() {
                flat_inputs.push((unrolled.inputs[t][i], bit));
            }
        }
        let inputs_by_index: Vec<bool> = {
            // The unrolled netlist's primary inputs are in cycle-major order.
            let mut v = vec![false; unrolled.netlist.num_inputs()];
            for (net, bit) in &flat_inputs {
                let pos = unrolled
                    .netlist
                    .inputs()
                    .iter()
                    .position(|n| n == net)
                    .expect("input exists");
                v[pos] = *bit;
            }
            v
        };
        let outputs = comb_sim.peek_outputs(&inputs_by_index).expect("evaluates");
        // Compare every cycle's outputs.
        let mut offset = 0;
        for (t, cycle_outputs) in sequential.iter().enumerate() {
            let slice = &outputs[offset..offset + cycle_outputs.len()];
            assert_eq!(slice, &cycle_outputs[..], "cycle {t} mismatch");
            offset += cycle_outputs.len();
        }
    }
}
