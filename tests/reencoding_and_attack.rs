//! Integration test: state re-encoding (the removal-attack countermeasure)
//! does not weaken the SAT-attack resilience — the attack on the re-encoded
//! circuit behaves exactly as on the plain locked circuit, which is the
//! composability argument implicit in the paper's design (Section III-C only
//! alters the state encoding, not the error function).

use rand::rngs::StdRng;
use rand::SeedableRng;

use trilock_suite::attacks::{AttackStatus, SatAttack, SatAttackConfig};
use trilock_suite::benchgen::small;
use trilock_suite::sim;
use trilock_suite::trilock::{analytic, lock, SecurityReport, TriLockConfig};

#[test]
fn sat_attack_against_a_reencoded_circuit_still_needs_exponential_dips() {
    let original = small::toy_controller(2).expect("toy circuit builds");
    let config = TriLockConfig::new(1, 1)
        .with_alpha(0.6)
        .with_reencode_pairs(4);
    let mut rng = StdRng::seed_from_u64(404);
    let flow = lock(&original, &config, &mut rng).expect("full flow succeeds");
    assert!(flow.reencode.num_pairs() >= 1, "re-encoding must engage");

    let attack = SatAttack::new(&original, &flow.locked.netlist, flow.locked.kappa())
        .expect("interfaces match");
    let attack_config = SatAttackConfig {
        initial_unroll: 1,
        max_unroll: 4,
        max_dips: 20_000,
        verify_sequences: 24,
        verify_cycles: 10,
        ..SatAttackConfig::default()
    };
    let mut attack_rng = StdRng::seed_from_u64(405);
    let outcome = attack
        .run(&attack_config, &mut attack_rng)
        .expect("attack runs");

    // The attack still succeeds (re-encoding is not meant to stop SAT attacks)
    // but the DIP count still honours the Eq. 10 bound.
    let key = match outcome.status {
        AttackStatus::KeyFound(key) => key,
        other => panic!("attack did not finish: {other:?}"),
    };
    assert!(outcome.dips as f64 >= analytic::ndip(original.num_inputs(), config.kappa_s));
    let mut check_rng = StdRng::seed_from_u64(406);
    let cex = sim::equiv::key_restores_function(
        &original,
        &flow.locked.netlist,
        key.cycles(),
        10,
        40,
        &mut check_rng,
    )
    .expect("equivalence check runs");
    assert!(cex.is_none());
}

#[test]
fn security_report_reflects_both_defense_dimensions() {
    let original = small::accumulator(5).expect("accumulator builds");
    let config = TriLockConfig::new(2, 1)
        .with_alpha(0.6)
        .with_reencode_pairs(6);
    let mut rng = StdRng::seed_from_u64(1);
    let flow = lock(&original, &config, &mut rng).expect("full flow succeeds");

    let mut fc_rng = StdRng::seed_from_u64(2);
    let report = SecurityReport::analyze(&original, &flow.locked, 6, 300, &mut fc_rng)
        .expect("analysis runs");

    // SAT dimension: exponential DIPs, b* = κs.
    assert_eq!(report.ndip, analytic::ndip(original.num_inputs(), 2));
    assert_eq!(report.min_unroll_depth, 2);
    // Corruptibility dimension: measurement tracks Eq. 15.
    assert!(
        report.fc_model_error() < 0.12,
        "{}",
        report.fc_model_error()
    );
    // Removal dimension: re-encoding hid the locking registers.
    assert!(report.removal_resistant(), "{}", report.summary());
}
