//! Integration test: the removal-attack pipeline (lock → re-encode → SCC
//! analysis) reproduces the qualitative behaviour of the paper's Table II.

use rand::rngs::StdRng;
use rand::SeedableRng;

use trilock_suite::attacks::removal_attack;
use trilock_suite::benchgen::{generate_scaled, CircuitProfile};
use trilock_suite::sim;
use trilock_suite::stg::{classify_sccs, RegisterGraph};
use trilock_suite::trilock::{encrypt, reencode, TriLockConfig};

fn locked_profile_circuit(seed: u64) -> (netlist::Netlist, trilock::LockedCircuit) {
    let profile = CircuitProfile::by_name("b12").expect("profile exists");
    let original = generate_scaled(&profile, 8, seed).expect("generation succeeds");
    let config = TriLockConfig::new(2, 1).with_alpha(0.6);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x10c);
    let locked = encrypt(&original, &config, &mut rng).expect("locking succeeds");
    (original, locked)
}

#[test]
fn reencoding_collapses_pure_sccs_into_mixed_ones() {
    let (_, locked) = locked_profile_circuit(31);
    let baseline = removal_attack(&locked.netlist);
    assert_eq!(baseline.scc.num_mixed, 0, "no M-SCC before re-encoding");
    assert!(baseline.scc.num_extra > 0, "locking registers form E-SCCs");
    assert!(baseline.attack_succeeded());

    for pairs in [5usize, 15] {
        let mut netlist = locked.netlist.clone();
        reencode(&mut netlist, pairs).expect("re-encoding succeeds");
        let report = removal_attack(&netlist);
        assert!(report.scc.num_mixed >= 1, "S={pairs}: expected an M-SCC");
        assert!(
            report.percent_hidden() > baseline.percent_hidden(),
            "S={pairs}: P_M must increase"
        );
        assert!(
            report.scc.num_original < baseline.scc.num_original,
            "S={pairs}: O-SCC count must shrink"
        );
        assert!(!report.attack_succeeded());
    }
}

#[test]
fn more_pairs_hide_at_least_as_many_registers() {
    let (_, locked) = locked_profile_circuit(77);
    let mut previous = -1.0f64;
    for pairs in [0usize, 3, 8, 15] {
        let mut netlist = locked.netlist.clone();
        if pairs > 0 {
            reencode(&mut netlist, pairs).expect("re-encoding succeeds");
        }
        let report = removal_attack(&netlist);
        assert!(
            report.percent_hidden() >= previous - 1e-9,
            "P_M must be non-decreasing in S (S={pairs})"
        );
        previous = report.percent_hidden();
    }
    assert!(previous > 0.0);
}

#[test]
fn reencoding_preserves_functionality_on_profile_circuits() {
    let (original, locked) = locked_profile_circuit(13);
    let mut netlist = locked.netlist.clone();
    reencode(&mut netlist, 10).expect("re-encoding succeeds");
    let mut rng = StdRng::seed_from_u64(99);
    let cex = sim::equiv::key_restores_function(
        &original,
        &netlist,
        locked.key.cycles(),
        10,
        25,
        &mut rng,
    )
    .expect("equivalence check runs");
    assert!(cex.is_none(), "re-encoded circuit diverged: {cex:?}");
}

#[test]
fn scc_report_is_consistent_with_the_graph() {
    let (_, locked) = locked_profile_circuit(5);
    let graph = RegisterGraph::build(&locked.netlist);
    let report = classify_sccs(&graph);
    assert_eq!(report.num_registers(), locked.netlist.num_dffs());
    assert_eq!(
        report.num_original + report.num_extra + report.num_mixed,
        report.sccs.len()
    );
}
